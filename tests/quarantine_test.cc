// Quarantine tests: buffering, epoch lock-in, failed-free carry-over, and
// byte accounting across the entry life-cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "quarantine/quarantine.h"

namespace msw::quarantine {
namespace {

Entry
entry(std::uintptr_t base, std::size_t usable, bool unmapped = false)
{
    return Entry::make(base, usable, unmapped);
}

TEST(Quarantine, InsertAccumulatesPendingBytes)
{
    Quarantine q(8);
    q.insert(entry(0x1000, 100));
    q.insert(entry(0x2000, 200));
    EXPECT_EQ(q.pending_bytes(), 300u);
    EXPECT_EQ(q.stats().entries_added, 2u);
}

TEST(Quarantine, UnmappedEntriesCountSeparately)
{
    Quarantine q(8);
    q.insert(entry(0x1000, 100));
    q.insert(entry(0x2000, 4096, /*unmapped=*/true));
    EXPECT_EQ(q.pending_bytes(), 100u);
    EXPECT_EQ(q.unmapped_bytes(), 4096u);
}

TEST(Quarantine, LockInDrainsCurrentEpoch)
{
    Quarantine q(4);
    for (int i = 0; i < 10; ++i)
        q.insert(entry(0x1000 + i * 16, 16));
    std::vector<Entry> out;
    q.lock_in(out);
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(q.pending_bytes(), 0u);

    // A second lock-in with nothing new returns empty.
    q.lock_in(out);
    EXPECT_TRUE(out.empty());
}

TEST(Quarantine, EntriesAfterLockInGoToNextEpoch)
{
    Quarantine q(2);
    q.insert(entry(0x1000, 16));
    std::vector<Entry> first;
    q.lock_in(first);
    EXPECT_EQ(first.size(), 1u);

    q.insert(entry(0x2000, 32));
    EXPECT_EQ(q.pending_bytes(), 32u);
    std::vector<Entry> second;
    q.lock_in(second);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].real_base(), 0x2000u);
}

TEST(Quarantine, FailedFreesRejoinNextLockIn)
{
    Quarantine q(2);
    q.insert(entry(0x1000, 16));
    q.insert(entry(0x2000, 32));
    std::vector<Entry> set;
    q.lock_in(set);
    EXPECT_EQ(set.size(), 2u);

    // Pretend 0x2000 failed its sweep test.
    std::vector<Entry> failed = {entry(0x2000, 32)};
    q.store_failed(std::move(failed));
    EXPECT_EQ(q.failed_bytes(), 32u);
    EXPECT_EQ(q.pending_bytes(), 0u)
        << "failed frees are excluded from the trigger numerator";

    q.insert(entry(0x3000, 64));
    std::vector<Entry> next;
    q.lock_in(next);
    EXPECT_EQ(next.size(), 2u) << "failed entry must be retested";
    EXPECT_EQ(q.failed_bytes(), 0u);
    const bool has_failed =
        std::any_of(next.begin(), next.end(),
                    [](const Entry& e) { return e.real_base() == 0x2000; });
    EXPECT_TRUE(has_failed);
}

TEST(Quarantine, ByteAccountingSurvivesFullCycle)
{
    Quarantine q(4);
    q.insert(entry(0x1000, 100));
    q.insert(entry(0x2000, 200, true));
    q.insert(entry(0x3000, 300));
    EXPECT_EQ(q.pending_bytes(), 400u);
    EXPECT_EQ(q.unmapped_bytes(), 200u);

    std::vector<Entry> set;
    q.lock_in(set);
    EXPECT_EQ(q.pending_bytes(), 0u);
    EXPECT_EQ(q.unmapped_bytes(), 0u);

    // One mapped and the unmapped entry fail.
    std::vector<Entry> failed = {entry(0x1000, 100),
                                 entry(0x2000, 200, true)};
    q.store_failed(std::move(failed));
    EXPECT_EQ(q.failed_bytes(), 100u);
    EXPECT_EQ(q.unmapped_bytes(), 200u);
    EXPECT_EQ(q.pending_bytes(), 0u);
}

TEST(Quarantine, BufferSpillsAtCapacity)
{
    // With capacity 4, inserting 3 then locking in from *another* thread
    // misses the buffered entries; inserting 4 spills them globally.
    Quarantine q(4);
    for (int i = 0; i < 3; ++i)
        q.insert(entry(0x1000 + i * 16, 16));

    std::vector<Entry> seen_by_other;
    std::thread other([&] { q.lock_in(seen_by_other); });
    other.join();
    EXPECT_TRUE(seen_by_other.empty())
        << "entries below capacity stay in the owner's buffer";

    q.insert(entry(0x5000, 16));  // 4th insert: spill
    std::thread other2([&] { q.lock_in(seen_by_other); });
    other2.join();
    EXPECT_EQ(seen_by_other.size(), 4u);
}

TEST(Quarantine, OwnThreadLockInFlushesOwnBuffer)
{
    Quarantine q(64);
    q.insert(entry(0x1000, 16));
    std::vector<Entry> out;
    q.lock_in(out);  // same thread: must flush its own buffer first
    EXPECT_EQ(out.size(), 1u);
}

TEST(Quarantine, ThreadExitFlushesBuffer)
{
    Quarantine q(64);
    std::thread t([&] { q.insert(entry(0x7000, 16)); });
    t.join();
    std::vector<Entry> out;
    q.lock_in(out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].real_base(), 0x7000u);
}

TEST(Quarantine, ManyThreadsInsertConcurrently)
{
    Quarantine q(16);
    const int kThreads = 4;
    const int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                q.insert(entry(0x10000 + (t * kPerThread + i) * 16, 16));
        });
    }
    for (auto& th : threads)
        th.join();
    std::vector<Entry> out;
    q.lock_in(out);
    EXPECT_EQ(out.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    EXPECT_EQ(q.stats().entries_added,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace msw::quarantine
