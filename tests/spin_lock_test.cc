// SpinLock / msw::Mutex behaviour under contention, LockGuard/UniqueLock
// RAII, and runtime lock-rank validation (inversion panics, try_lock
// exemption, release-order tolerance).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/spin_lock.h"

namespace msw {
namespace {

using util::LockRank;

TEST(SpinLock, ContendedIncrementsAreNotLost)
{
    SpinLock lock;
    std::uint64_t counter = 0;  // deliberately non-atomic
    constexpr int kThreads = 8;
    constexpr int kIters = 20'000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                LockGuard g(lock);
                ++counter;
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SpinLock, TryLockFailsWhileHeldAndSucceedsAfterRelease)
{
    SpinLock lock;
    lock.lock();

    std::atomic<bool> tried{false};
    std::atomic<bool> acquired{false};
    std::thread other([&] {
        acquired = lock.try_lock();
        tried = true;
    });
    other.join();
    EXPECT_TRUE(tried.load());
    EXPECT_FALSE(acquired.load());

    lock.unlock();
    ASSERT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(SpinLock, TryLockUnderContentionEventuallySucceeds)
{
    SpinLock lock;
    std::atomic<int> successes{0};
    constexpr int kThreads = 4;
    constexpr int kTarget = 1'000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            while (successes.load(std::memory_order_relaxed) < kTarget) {
                if (lock.try_lock()) {
                    successes.fetch_add(1, std::memory_order_relaxed);
                    lock.unlock();
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_GE(successes.load(), kTarget);
}

TEST(Mutex, UniqueLockManualRelockRoundTrip)
{
    Mutex mu;
    UniqueLock l(mu);
    EXPECT_TRUE(l.owns_lock());
    l.unlock();
    EXPECT_FALSE(l.owns_lock());
    l.lock();
    EXPECT_TRUE(l.owns_lock());
}

/** RAII enable/restore so a failing assertion cannot leak global state. */
class LockRankEnabler
{
  public:
    LockRankEnabler() { util::lock_rank_set_enabled(true); }
    ~LockRankEnabler() { util::lock_rank_set_enabled(false); }
};

TEST(LockRank, InOrderAcquisitionIsAccepted)
{
    LockRankEnabler on;
    SpinLock control(LockRank::kCoreControl);
    SpinLock bin(LockRank::kBin);
    SpinLock extent(LockRank::kExtent);

    control.lock();
    bin.lock();
    extent.lock();
    EXPECT_EQ(util::lock_rank_held_count(), 3);
    extent.unlock();
    bin.unlock();
    control.unlock();
    EXPECT_EQ(util::lock_rank_held_count(), 0);
}

TEST(LockRank, UnrankedLocksAreIgnored)
{
    LockRankEnabler on;
    SpinLock plain;  // kUnranked: test/workload-local locks opt out
    SpinLock extent(LockRank::kExtent);

    extent.lock();
    plain.lock();  // no rank entry, no order check
    EXPECT_EQ(util::lock_rank_held_count(), 1);
    plain.unlock();
    extent.unlock();
}

TEST(LockRank, TryLockIsExemptFromOrderCheck)
{
    LockRankEnabler on;
    SpinLock extent(LockRank::kExtent);
    SpinLock bin(LockRank::kBin);

    // try_lock against the order is allowed (it cannot deadlock)...
    extent.lock();
    ASSERT_TRUE(bin.try_lock());
    EXPECT_EQ(util::lock_rank_held_count(), 2);
    bin.unlock();
    extent.unlock();
}

TEST(LockRank, OutOfOrderReleaseIsTolerated)
{
    LockRankEnabler on;
    SpinLock bin(LockRank::kBin);
    SpinLock extent(LockRank::kExtent);

    bin.lock();
    extent.lock();
    bin.unlock();  // released before the higher-ranked extent lock
    EXPECT_EQ(util::lock_rank_held_count(), 1);
    extent.unlock();
    EXPECT_EQ(util::lock_rank_held_count(), 0);
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, BlockingInversionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            util::lock_rank_set_enabled(true);
            SpinLock extent(LockRank::kExtent);
            SpinLock bin(LockRank::kBin);
            extent.lock();
            bin.lock();  // bin (32) after extent (40): inversion
        },
        "lock rank inversion");
}

TEST(LockRankDeathTest, SameRankNestingPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            util::lock_rank_set_enabled(true);
            SpinLock a(LockRank::kBin);
            SpinLock b(LockRank::kBin);
            a.lock();
            b.lock();  // two bin locks must never nest
        },
        "lock rank inversion");
}

TEST(LockRankDeathTest, RankedMutexInversionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            util::lock_rank_set_enabled(true);
            Mutex metrics(LockRank::kMetrics);
            Mutex control(LockRank::kCoreControl);
            MutexGuard g1(metrics);
            MutexGuard g2(control);  // core band under the metrics leaf
        },
        "lock rank inversion");
}

}  // namespace
}  // namespace msw
