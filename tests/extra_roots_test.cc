// Tests for the extra-roots provider and internal-region exclusion — the
// machinery behind the LD_PRELOAD shim's /proc/self/maps scanning.
#include <gtest/gtest.h>

#include <cstring>

#include "core/minesweeper.h"

namespace msw::core {
namespace {

Options
small_options()
{
    Options o;
    o.min_sweep_bytes = 4096;
    o.helper_threads = 1;
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

TEST(ExtraRoots, ProviderRangesAreScanned)
{
    MineSweeper ms(small_options());
    // The dangling pointer lives in a buffer known only to the provider —
    // not registered through add_root.
    static void* hidden_roots[4];
    ms.set_extra_roots_provider([] {
        return std::vector<sweep::Range>{
            {to_addr(hidden_roots), sizeof(hidden_roots)}};
    });

    void* p = ms.alloc(64);
    hidden_roots[2] = p;
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p))
        << "provider-supplied root must pin the allocation";
    hidden_roots[2] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
}

TEST(ExtraRoots, ProviderIsReevaluatedEachSweep)
{
    MineSweeper ms(small_options());
    static void* region_a[2];
    static void* region_b[2];
    static bool use_b = false;
    ms.set_extra_roots_provider([]() -> std::vector<sweep::Range> {
        if (use_b)
            return {{to_addr(region_b), sizeof(region_b)}};
        return {{to_addr(region_a), sizeof(region_a)}};
    });

    void* p = ms.alloc(64);
    region_b[0] = p;  // pointer lives in the *not yet visible* region
    ms.free(p);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p))
        << "region_b not provided yet: allocation released";

    void* q = ms.alloc(64);
    region_b[1] = q;
    use_b = true;  // the provider now exposes region_b
    ms.free(q);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(q));
    region_b[1] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(q));
}

TEST(ExtraRoots, InternalRegionsAreNonEmptyAndDisjointFromHeap)
{
    MineSweeper ms(small_options());
    const auto regions = ms.internal_regions();
    ASSERT_GE(regions.size(), 5u);
    const auto& heap = ms.substrate().reservation();
    for (const auto& r : regions) {
        EXPECT_GT(r.len, 0u);
        EXPECT_TRUE(r.end() <= heap.base() || r.base >= heap.end())
            << "internal region overlaps the heap reservation";
    }
}

TEST(ExtraRoots, InternalRegionsAreExcludedFromProviderRanges)
{
    // A provider that (incorrectly) offers the whole address space
    // including the shadow map must not cause self-pinning: internal
    // regions are filtered out before scanning.
    MineSweeper ms(small_options());
    static MineSweeper* g_ms;
    g_ms = &ms;
    ms.set_extra_roots_provider([]() -> std::vector<sweep::Range> {
        // Offer exactly the internal regions (worst case).
        return g_ms->internal_regions();
    });

    std::vector<void*> ptrs;
    for (int i = 0; i < 500; ++i)
        ptrs.push_back(ms.alloc(64));
    for (void* p : ptrs)
        ms.free(p);
    ms.force_sweep();
    ms.force_sweep();
    for (void* p : ptrs)
        ASSERT_FALSE(ms.in_quarantine(p))
            << "scanning internal metadata pinned quarantined objects";
}

}  // namespace
}  // namespace msw::core
