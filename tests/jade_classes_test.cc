// Per-size-class parameterised sweeps over JadeHeap: every class must
// round-trip alloc/usable/free, pack its slab without overlap, recycle
// exactly, and interoperate with lookup. Complements jade_allocator_test
// with exhaustive class coverage (property-style TEST_P, per the repo's
// testing conventions).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "alloc/jade_allocator.h"
#include "alloc/size_classes.h"

namespace msw::alloc {
namespace {

class PerClassTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    JadeAllocator::Options
    options()
    {
        JadeAllocator::Options o;
        o.heap_bytes = std::size_t{1} << 30;
        o.decay_ms = 0;
        return o;
    }

    PerClassTest() : jade(options()) {}
    JadeAllocator jade;
};

TEST_P(PerClassTest, ExactClassSizeRoundTrips)
{
    const unsigned cls = GetParam();
    const std::size_t size = class_size(cls);
    void* p = jade.alloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(jade.usable_size(p), size)
        << "exact class-size request must not be rounded up";
    std::memset(p, 0x7e, size);
    jade.free(p);
}

TEST_P(PerClassTest, FullSlabHasNoOverlapsAndCoversSlots)
{
    const unsigned cls = GetParam();
    const std::size_t size = class_size(cls);
    const unsigned slots = slab_slots(cls);

    std::vector<void*> objs;
    std::set<std::uintptr_t> bases;
    for (unsigned i = 0; i < slots * 2; ++i) {
        void* p = jade.alloc(size);
        ASSERT_TRUE(bases.insert(to_addr(p)).second)
            << "duplicate address handed out";
        objs.push_back(p);
    }
    // Distinct objects must be spaced by at least the class size.
    std::uintptr_t prev = 0;
    for (const std::uintptr_t base : bases) {
        if (prev != 0)
            ASSERT_GE(base - prev, size);
        prev = base;
    }
    for (void* p : objs)
        jade.free(p);
}

TEST_P(PerClassTest, LookupResolvesEveryInteriorByte)
{
    const unsigned cls = GetParam();
    const std::size_t size = class_size(cls);
    auto* p = static_cast<char*>(jade.alloc(size));
    JadeAllocator::AllocationInfo info;
    for (const std::size_t off :
         {std::size_t{0}, size / 2, size - 1}) {
        ASSERT_TRUE(jade.lookup_allocation(to_addr(p) + off, &info))
            << "offset " << off;
        EXPECT_EQ(info.base, to_addr(p)) << "offset " << off;
        EXPECT_EQ(info.usable, size);
        EXPECT_TRUE(info.live);
    }
    jade.free(p);
}

TEST_P(PerClassTest, FreeDirectReturnsSlotToBin)
{
    const unsigned cls = GetParam();
    const std::size_t size = class_size(cls);
    void* p = jade.alloc(size);
    jade.free_direct(p);
    JadeAllocator::AllocationInfo info;
    if (jade.lookup_allocation(to_addr(p), &info))
        EXPECT_FALSE(info.live);
    EXPECT_EQ(jade.live_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, PerClassTest,
    ::testing::Range(0u, 35u),
    [](const ::testing::TestParamInfo<unsigned>& info) {
        return "size" + std::to_string(class_size(info.param));
    });

// Large-allocation size sweep: page-boundary edge cases.
class LargeSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LargeSizeTest, LargeRoundTripsAndIsExclusive)
{
    JadeAllocator::Options o;
    o.heap_bytes = std::size_t{1} << 30;
    JadeAllocator jade(o);
    const std::size_t size = GetParam();
    auto* a = static_cast<char*>(jade.alloc(size));
    auto* b = static_cast<char*>(jade.alloc(size));
    ASSERT_NE(a, b);
    EXPECT_GE(jade.usable_size(a), size);
    EXPECT_TRUE(is_aligned(to_addr(a), vm::kPageSize));
    // No overlap.
    EXPECT_TRUE(a + jade.usable_size(a) <= b ||
                b + jade.usable_size(b) <= a);
    a[0] = 1;
    a[size - 1] = 2;
    jade.free(a);
    jade.free(b);
    EXPECT_EQ(jade.live_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LargeSizeTest,
    ::testing::Values(14337, 16384, 16385, 65536, 65537, 1 << 20,
                      (1 << 20) + 1, 5 << 20),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        return "b" + std::to_string(info.param);
    });

}  // namespace
}  // namespace msw::alloc
