// Extent-allocator tests: allocation/free/coalescing, page-map lookup,
// alignment, decay purging, and hook integration.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/extent_allocator.h"

namespace msw::alloc {
namespace {

constexpr std::size_t kHeapBytes = 256 << 20;

class ExtentAllocTest : public ::testing::Test
{
  protected:
    ExtentAllocator ea{kHeapBytes, /*decay_ms=*/0};
};

TEST_F(ExtentAllocTest, AllocReturnsCommittedWritableExtent)
{
    ExtentMeta* e = ea.alloc_extent(4, ExtentKind::kLarge);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->pages, 4u);
    EXPECT_TRUE(e->committed);
    std::memset(to_ptr(e->base), 0x5a, e->bytes());
}

TEST_F(ExtentAllocTest, DistinctExtentsDoNotOverlap)
{
    ExtentMeta* a = ea.alloc_extent(2, ExtentKind::kLarge);
    ExtentMeta* b = ea.alloc_extent(3, ExtentKind::kLarge);
    EXPECT_TRUE(a->end() <= b->base || b->end() <= a->base);
}

TEST_F(ExtentAllocTest, LookupFindsExtentForEveryInteriorPage)
{
    ExtentMeta* e = ea.alloc_extent(8, ExtentKind::kLarge);
    for (std::size_t off = 0; off < e->bytes(); off += vm::kPageSize)
        EXPECT_EQ(ea.lookup(e->base + off), e);
    EXPECT_EQ(ea.lookup(e->base + e->bytes() - 1), e);
}

TEST_F(ExtentAllocTest, LookupReturnsNullAfterFree)
{
    ExtentMeta* e = ea.alloc_extent(2, ExtentKind::kLarge);
    const std::uintptr_t base = e->base;
    ea.free_extent(e);
    EXPECT_EQ(ea.lookup(base), nullptr);
}

TEST_F(ExtentAllocTest, LookupOutsideHeapReturnsNull)
{
    int local = 0;
    EXPECT_EQ(ea.lookup(to_addr(&local)), nullptr);
    EXPECT_EQ(ea.lookup(0x1000), nullptr);
}

TEST_F(ExtentAllocTest, FreedExtentIsReused)
{
    ExtentMeta* e = ea.alloc_extent(4, ExtentKind::kLarge);
    const std::uintptr_t base = e->base;
    ea.free_extent(e);
    ExtentMeta* f = ea.alloc_extent(4, ExtentKind::kLarge);
    EXPECT_EQ(f->base, base) << "exact-size free extent should be reused";
}

TEST_F(ExtentAllocTest, AdjacentFreesCoalesce)
{
    ExtentMeta* a = ea.alloc_extent(2, ExtentKind::kLarge);
    ExtentMeta* b = ea.alloc_extent(2, ExtentKind::kLarge);
    ASSERT_EQ(b->base, a->end()) << "bump allocation should be contiguous";
    const std::uintptr_t base = a->base;
    ea.free_extent(a);
    ea.free_extent(b);
    // A 4-page request must now fit into the coalesced hole.
    ExtentMeta* c = ea.alloc_extent(4, ExtentKind::kLarge);
    EXPECT_EQ(c->base, base);
}

TEST_F(ExtentAllocTest, OversizedFreeExtentIsSplit)
{
    ExtentMeta* big = ea.alloc_extent(16, ExtentKind::kLarge);
    const std::uintptr_t base = big->base;
    ea.free_extent(big);
    ExtentMeta* small = ea.alloc_extent(4, ExtentKind::kLarge);
    EXPECT_EQ(small->base, base);
    // The 12-page remainder must be reusable.
    ExtentMeta* rest = ea.alloc_extent(12, ExtentKind::kLarge);
    EXPECT_EQ(rest->base, base + 4 * vm::kPageSize);
}

TEST_F(ExtentAllocTest, AlignedAllocationRespectsAlignment)
{
    // Force some misalignment first.
    ea.alloc_extent(3, ExtentKind::kLarge);
    ExtentMeta* e = ea.alloc_extent(4, ExtentKind::kLarge, /*align_pages=*/8);
    EXPECT_TRUE(is_aligned(e->base, 8 * vm::kPageSize));
}

TEST_F(ExtentAllocTest, StatsTrackActiveAndCommitted)
{
    const ExtentStats before = ea.stats();
    ExtentMeta* e = ea.alloc_extent(10, ExtentKind::kLarge);
    const ExtentStats mid = ea.stats();
    EXPECT_EQ(mid.active_bytes, before.active_bytes + 10 * vm::kPageSize);
    EXPECT_GE(mid.committed_bytes, before.committed_bytes);
    ea.free_extent(e);
    const ExtentStats after = ea.stats();
    EXPECT_EQ(after.active_bytes, before.active_bytes);
}

TEST_F(ExtentAllocTest, PurgeAllDropsCommittedBytes)
{
    ExtentMeta* e = ea.alloc_extent(64, ExtentKind::kLarge);
    std::memset(to_ptr(e->base), 1, e->bytes());
    ea.free_extent(e);
    const ExtentStats before = ea.stats();
    EXPECT_GE(before.committed_bytes, 64 * vm::kPageSize);
    ea.purge_all();
    const ExtentStats after = ea.stats();
    EXPECT_LT(after.committed_bytes, before.committed_bytes);
    EXPECT_GT(after.purges, before.purges);
}

TEST_F(ExtentAllocTest, PurgedExtentIsRecommittedOnReuse)
{
    ExtentMeta* e = ea.alloc_extent(4, ExtentKind::kLarge);
    const std::uintptr_t base = e->base;
    std::memset(to_ptr(base), 0x77, 4 * vm::kPageSize);
    ea.free_extent(e);
    ea.purge_all();
    ExtentMeta* f = ea.alloc_extent(4, ExtentKind::kLarge);
    ASSERT_EQ(f->base, base);
    auto* p = reinterpret_cast<unsigned char*>(base);
    EXPECT_EQ(p[0], 0u) << "purged memory must come back zeroed";
    p[0] = 1;  // and writable
}

TEST_F(ExtentAllocTest, ForEachActiveExtentSeesAllActive)
{
    std::vector<ExtentMeta*> extents;
    for (int i = 0; i < 5; ++i)
        extents.push_back(ea.alloc_extent(i + 1, ExtentKind::kLarge));
    ea.free_extent(extents[2]);

    std::size_t total = 0;
    int count = 0;
    ea.for_each_active_extent([&](std::uintptr_t /*base*/,
                                  std::size_t bytes) {
        total += bytes;
        ++count;
    });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(total, (1 + 2 + 4 + 5) * vm::kPageSize);
}

TEST_F(ExtentAllocTest, ManyAllocFreeCyclesStayBounded)
{
    // Churn must not leak address space: the frontier should stabilise.
    for (int round = 0; round < 50; ++round) {
        std::vector<ExtentMeta*> es;
        for (int i = 0; i < 20; ++i)
            es.push_back(ea.alloc_extent(1 + (i % 7), ExtentKind::kLarge));
        for (auto* e : es)
            ea.free_extent(e);
    }
    EXPECT_LT(ea.stats().mapped_frontier, 8u << 20)
        << "frontier should stay far below 8 MiB for this workload";
}

class HookRecorder : public ExtentHooks
{
  public:
    using ExtentHooks::ExtentHooks;
    int commits = 0;
    int purges = 0;

    [[nodiscard]] bool
    commit(std::uintptr_t addr, std::size_t len) override
    {
        ++commits;
        return ExtentHooks::commit(addr, len);
    }

    [[nodiscard]] bool
    purge(std::uintptr_t addr, std::size_t len) override
    {
        ++purges;
        return ExtentHooks::purge(addr, len);
    }
};

TEST(ExtentHooksTest, HooksObserveCommitAndPurge)
{
    ExtentAllocator ea(kHeapBytes, 0);
    HookRecorder hooks(&ea.reservation());
    ea.set_hooks(&hooks);
    ExtentMeta* e = ea.alloc_extent(4, ExtentKind::kLarge);
    EXPECT_EQ(hooks.commits, 1);
    ea.free_extent(e);
    EXPECT_EQ(hooks.purges, 0) << "no purge before decay/purge_all";
    ea.purge_all();
    EXPECT_EQ(hooks.purges, 1);
    // Reuse after purge must commit again.
    ea.alloc_extent(4, ExtentKind::kLarge);
    EXPECT_EQ(hooks.commits, 2);
}

TEST(ExtentDecayTest, DecayPurgesOldFreeExtents)
{
    ExtentAllocator ea(kHeapBytes, /*decay_ms=*/1);
    ExtentMeta* e = ea.alloc_extent(32, ExtentKind::kLarge);
    std::memset(to_ptr(e->base), 1, e->bytes());
    ea.free_extent(e);
    const ExtentStats before = ea.stats();
    usleep(5000);
    ea.decay_tick();
    const ExtentStats after = ea.stats();
    EXPECT_LT(after.committed_bytes, before.committed_bytes);
}

}  // namespace
}  // namespace msw::alloc
