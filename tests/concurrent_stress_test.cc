// Concurrent malloc/free-vs-sweep stress: mutator threads hammer the
// allocator with mixed lifetimes while their quarantine flushes race the
// background sweeper and its helpers. Exists primarily for the tsan ctest
// label (MSW_SANITIZE=thread) and the debug lock-rank build, where it
// drives every lock nesting in the stack: tcache -> bin -> extent,
// quarantine registry -> epoch lists, sweep control -> roots -> workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/minesweeper.h"
#include "util/rng.h"

namespace msw {
namespace {

core::Options
stress_options()
{
    core::Options opts;
    opts.mode = core::Mode::kFullyConcurrent;
    // Sweep eagerly so the background sweeper runs many passes during the
    // test instead of one at the end.
    opts.min_sweep_bytes = 64 * 1024;
    opts.sweep_threshold = 0.05;
    opts.helper_threads = 2;
    opts.tl_buffer_entries = 16;  // frequent flushes into the epoch lists
    return opts;
}

void
mutator(core::MineSweeper* msw, unsigned seed, std::atomic<bool>* stop,
        std::atomic<std::uint64_t>* allocs)
{
    msw->register_mutator_thread();
    Rng rng(seed);

    // Mixed lifetimes: a slot table of surviving objects plus a stream of
    // short-lived ones, sizes spanning small classes and large spans.
    // Iterations are bounded so the test terminates deterministically
    // even under TSan's slowdown; `stop` only ends it early.
    constexpr int kSlots = 256;
    constexpr int kMaxIters = 50'000;
    struct Slot {
        void* p = nullptr;
        std::size_t n = 0;
    };
    std::vector<Slot> slots(kSlots);

    for (int iter = 0;
         iter < kMaxIters && !stop->load(std::memory_order_relaxed);
         ++iter) {
        const int i = static_cast<int>(rng.next_u64() % kSlots);
        Slot& s = slots[i];
        if (s.p != nullptr) {
            // Touch the object first: surviving objects must never have
            // been recycled out from under us.
            ASSERT_EQ(std::memcmp(s.p, &s.n, sizeof(s.n)), 0)
                << "live object clobbered";
            msw->free(s.p);
            s.p = nullptr;
            continue;
        }
        std::size_t size = 16u << (rng.next_u64() % 8);  // 16 B .. 2 KiB
        if (rng.next_u64() % 64 == 0)
            size = 64 * 1024;  // occasional large allocation
        void* p = msw->alloc(size);
        ASSERT_NE(p, nullptr);
        s.n = size;
        std::memcpy(p, &s.n, sizeof(s.n));
        s.p = p;
        allocs->fetch_add(1, std::memory_order_relaxed);
    }

    for (Slot& s : slots) {
        if (s.p != nullptr)
            msw->free(s.p);
    }
    msw->unregister_mutator_thread();
}

TEST(ConcurrentStress, MutatorsRaceQuarantineFlushesAndSweeps)
{
    core::MineSweeper msw(stress_options());
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> allocs{0};

    constexpr int kMutators = 4;
    std::vector<std::thread> threads;
    threads.reserve(kMutators);
    for (int t = 0; t < kMutators; ++t) {
        threads.emplace_back(mutator, &msw, 0x5eed + t, &stop, &allocs);
    }

    // Interleave control-path calls with the mutators: force_sweep and
    // flush take the sweep control mutex and wait on the sweeper, racing
    // the threshold-triggered background sweeps.
    for (int round = 0; round < 5; ++round) {
        msw.force_sweep();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    msw.flush();

    stop.store(true, std::memory_order_relaxed);
    for (auto& th : threads)
        th.join();
    msw.flush();

    const core::SweepStats stats = msw.sweep_stats();
    EXPECT_GE(stats.sweeps, 5u);
    EXPECT_GT(allocs.load(), 0u);
    EXPECT_GT(stats.entries_released, 0u);
}

TEST(ConcurrentStress, ForceSweepStormFromManyThreads)
{
    core::Options opts = stress_options();
    core::MineSweeper msw(opts);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> allocs{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back(mutator, &msw, 0xfeed + t, &stop, &allocs);
    }
    // Competing control threads: concurrent force_sweep/flush exercise the
    // single-sweeper CAS and the done-CV broadcast paths.
    std::vector<std::thread> controllers;
    for (int t = 0; t < 2; ++t) {
        controllers.emplace_back([&msw] {
            for (int i = 0; i < 3; ++i) {
                msw.force_sweep();
                msw.flush();
            }
        });
    }
    for (auto& th : controllers)
        th.join();
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : threads)
        th.join();

    EXPECT_GE(msw.sweep_stats().sweeps, 3u);
}

// DESIGN.md §13 cross-reference: the dynamic half of the
// `sweeper-token` and `epoch-handoff` protocol rows. Thread churn
// (register / flush / unregister) hands quarantine shard ownership
// back and forth while sweeps flip the reclaimer's scan epoch, and a
// monitor thread leans on the relaxed `sweeps_done_` read the static
// checker sanctions — TSan (ctest -L tsan) is the judge that those
// relaxed annotations describe real protocols, not wishes.
TEST(ConcurrentStress, SweeperTokenEpochHandoffInterleave)
{
    core::MineSweeper msw(stress_options());
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> allocs{0};

    // Churners: short register->work->flush->unregister lives, so shard
    // ownership (epoch-handoff) changes hands mid-sweep instead of once
    // at thread exit.
    std::vector<std::thread> churners;
    for (int t = 0; t < 3; ++t) {
        churners.emplace_back([&msw, &stop, &allocs, t] {
            Rng rng(0xc0ffee + static_cast<unsigned>(t));
            while (!stop.load(std::memory_order_relaxed)) {
                msw.register_mutator_thread();
                for (int i = 0; i < 64; ++i) {
                    const std::size_t size = 16u << (rng.next_u64() % 6);
                    void* p = msw.alloc(size);
                    ASSERT_NE(p, nullptr);
                    std::memset(p, 0xa5, size);
                    msw.free(p);
                    allocs.fetch_add(1, std::memory_order_relaxed);
                }
                msw.flush();
                msw.unregister_mutator_thread();
            }
        });
    }

    // Monitor: the sweep epoch (relaxed sweeps_done_ read, protocol
    // sweeper-token) must be monotonic from any thread, sweep or no
    // sweep in flight.
    std::thread monitor([&msw, &stop] {
        std::uint64_t last = msw.sweep_epoch();
        while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t now = msw.sweep_epoch();
            ASSERT_GE(now, last) << "sweep epoch went backwards";
            last = now;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    // Driver: force sweeps so the single-sweeper token and the scan
    // epoch flip while ownership churns underneath.
    for (int round = 0; round < 8; ++round) {
        msw.force_sweep();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    stop.store(true, std::memory_order_relaxed);
    for (auto& th : churners)
        th.join();
    monitor.join();
    msw.flush();

    EXPECT_GE(msw.sweep_stats().sweeps, 8u);
    EXPECT_GT(allocs.load(), 0u);
}

}  // namespace
}  // namespace msw
