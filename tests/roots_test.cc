// Root-registry and stop-the-world tests.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sweep/roots.h"
#include "util/bits.h"

namespace msw::sweep {
namespace {

TEST(RootRegistry, AddRemoveRoots)
{
    RootRegistry reg;
    int a[10];
    int b[20];
    reg.add_root(a, sizeof(a));
    reg.add_root(b, sizeof(b));
    EXPECT_EQ(reg.roots().size(), 2u);
    reg.remove_root(a);
    const auto roots = reg.roots();
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0].base, to_addr(b));
    EXPECT_EQ(roots[0].len, sizeof(b));
}

TEST(RootRegistry, RemoveUnknownRootIsNoop)
{
    RootRegistry reg;
    int a[4];
    reg.remove_root(a);
    EXPECT_TRUE(reg.roots().empty());
}

TEST(RootRegistry, RegisteredThreadStackCoversLocals)
{
    RootRegistry reg;
    std::thread t([&] {
        reg.register_current_thread();
        int local = 42;
        const auto stacks = reg.stacks();
        ASSERT_EQ(stacks.size(), 1u);
        const std::uintptr_t addr = to_addr(&local);
        EXPECT_GE(addr, stacks[0].base);
        EXPECT_LT(addr, stacks[0].end());
        reg.unregister_current_thread();
    });
    t.join();
    EXPECT_EQ(reg.num_threads(), 0u);
}

TEST(RootRegistry, StopWorldParksThreads)
{
    RootRegistry reg;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> counter{0};
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&] {
            reg.register_current_thread();
            ready.fetch_add(1);
            while (!stop.load(std::memory_order_relaxed))
                counter.fetch_add(1, std::memory_order_relaxed);
            reg.unregister_current_thread();
        });
    }
    while (ready.load() < 3)
        std::this_thread::yield();

    reg.stop_world();
    const std::uint64_t frozen = counter.load();
    // With the world stopped the counter must not advance.
    struct timespec ts {
        0, 50 * 1000 * 1000
    };
    nanosleep(&ts, nullptr);
    EXPECT_EQ(counter.load(), frozen);
    EXPECT_EQ(reg.parked_registers().size(), 3u);
    reg.resume_world();

    // After resume the counter advances again.
    const std::uint64_t resumed = counter.load();
    while (counter.load() == resumed)
        std::this_thread::yield();

    stop.store(true);
    for (auto& t : threads)
        t.join();
}

TEST(RootRegistry, StopWorldTwiceInARow)
{
    RootRegistry reg;
    std::atomic<bool> stop{false};
    std::thread t([&] {
        reg.register_current_thread();
        while (!stop.load(std::memory_order_relaxed))
            std::this_thread::yield();
        reg.unregister_current_thread();
    });
    struct timespec ts {
        0, 10 * 1000 * 1000
    };
    nanosleep(&ts, nullptr);
    while (reg.num_threads() < 1)
        std::this_thread::yield();

    for (int round = 0; round < 5; ++round) {
        reg.stop_world();
        reg.resume_world();
    }
    stop.store(true);
    t.join();
}

TEST(RootRegistry, StopWorldWithNoThreadsIsTrivial)
{
    RootRegistry reg;
    reg.stop_world();
    EXPECT_TRUE(reg.parked_registers().empty());
    reg.resume_world();
}

TEST(RootRegistry, ParkedRegistersContainStackPointer)
{
    // A value held in a register (the loop's spin flag address) should be
    // observable; at minimum the register dump must be non-trivial.
    RootRegistry reg;
    std::atomic<bool> stop{false};
    std::thread t([&] {
        reg.register_current_thread();
        while (!stop.load(std::memory_order_relaxed))
            std::this_thread::yield();
        reg.unregister_current_thread();
    });
    while (reg.num_threads() < 1)
        std::this_thread::yield();
    reg.stop_world();
    const auto regs = reg.parked_registers();
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_GE(regs[0].len, 16 * sizeof(std::uint64_t));
    // At least one register should look like a stack address (non-zero).
    const auto* vals = reinterpret_cast<const std::uint64_t*>(regs[0].base);
    bool any_nonzero = false;
    for (std::size_t i = 0; i < regs[0].len / 8; ++i)
        any_nonzero |= vals[i] != 0;
    EXPECT_TRUE(any_nonzero);
    reg.resume_world();
    stop.store(true);
    t.join();
}

}  // namespace
}  // namespace msw::sweep
