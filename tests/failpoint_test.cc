// Unit tests for the failpoint framework: policies, spec parsing, counter
// bookkeeping, and the disarmed fast path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/failpoint.h"

namespace msw::util {
namespace {

/** Every test leaves the process-global framework clean. */
class FailpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        failpoint_disarm_all();
        failpoint_reset_counters();
    }

    void
    TearDown() override
    {
        failpoint_disarm_all();
        failpoint_reset_counters();
    }
};

TEST_F(FailpointTest, DisarmedNeverFires)
{
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(failpoint_should_fail(Failpoint::kVmCommit));
    EXPECT_EQ(failpoint_evaluations(Failpoint::kVmCommit), 0u)
        << "disarmed evaluations must not take the slow path";
}

TEST_F(FailpointTest, ProbabilityExtremes)
{
    failpoint_arm(Failpoint::kVmCommit, FailpointPolicy::prob(1.0));
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(failpoint_should_fail(Failpoint::kVmCommit));

    failpoint_arm(Failpoint::kVmCommit, FailpointPolicy::prob(0.0));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(failpoint_should_fail(Failpoint::kVmCommit));
}

TEST_F(FailpointTest, ProbabilityRoughlyCalibrated)
{
    failpoint_seed(12345);
    failpoint_arm(Failpoint::kVmPurge, FailpointPolicy::prob(0.25));
    int hits = 0;
    const int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i)
        hits += failpoint_should_fail(Failpoint::kVmPurge) ? 1 : 0;
    // 0.25 ± generous slack (binomial stddev ~0.003 here).
    EXPECT_GT(hits, kTrials / 5);
    EXPECT_LT(hits, kTrials / 3);
    EXPECT_EQ(failpoint_hits(Failpoint::kVmPurge),
              static_cast<std::uint64_t>(hits));
}

TEST_F(FailpointTest, EveryNthFiresPeriodically)
{
    failpoint_arm(Failpoint::kVmDecommit, FailpointPolicy::every(3));
    int pattern = 0;
    for (int i = 0; i < 9; ++i) {
        pattern <<= 1;
        pattern |= failpoint_should_fail(Failpoint::kVmDecommit) ? 1 : 0;
    }
    EXPECT_EQ(pattern, 0b001001001);
    EXPECT_EQ(failpoint_evaluations(Failpoint::kVmDecommit), 9u);
    EXPECT_EQ(failpoint_hits(Failpoint::kVmDecommit), 3u);
}

TEST_F(FailpointTest, BurstFiresWindowThenSelfDisarms)
{
    failpoint_arm(Failpoint::kExtentGrow, FailpointPolicy::burst(3, 2));
    int pattern = 0;
    for (int i = 0; i < 8; ++i) {
        pattern <<= 1;
        pattern |= failpoint_should_fail(Failpoint::kExtentGrow) ? 1 : 0;
    }
    EXPECT_EQ(pattern, 0b00111000) << "skip 2, fire 3, then disarmed";
    EXPECT_EQ(failpoint_hits(Failpoint::kExtentGrow), 3u);
    // Self-disarm: only the 5 in-policy evaluations hit the slow path
    // (unless another test left something armed, which SetUp prevents).
    EXPECT_EQ(failpoint_evaluations(Failpoint::kExtentGrow), 5u);
}

TEST_F(FailpointTest, ReArmingResetsPolicyOrdinals)
{
    failpoint_arm(Failpoint::kVmCommit, FailpointPolicy::burst(1));
    EXPECT_TRUE(failpoint_should_fail(Failpoint::kVmCommit));
    failpoint_arm(Failpoint::kVmCommit, FailpointPolicy::burst(1));
    EXPECT_TRUE(failpoint_should_fail(Failpoint::kVmCommit))
        << "fresh burst must start from ordinal 0 again";
}

TEST_F(FailpointTest, NamesRoundTrip)
{
    for (unsigned i = 0; i < kNumFailpoints; ++i) {
        const auto fp = static_cast<Failpoint>(i);
        const char* name = failpoint_name(fp);
        ASSERT_NE(name, nullptr);
        Failpoint back;
        ASSERT_TRUE(failpoint_from_name(name, std::strlen(name), &back))
            << name;
        EXPECT_EQ(back, fp);
    }
    Failpoint out;
    EXPECT_FALSE(failpoint_from_name("vm.bogus", 8, &out));
}

TEST_F(FailpointTest, ConfigureSpecArmsClauses)
{
    ASSERT_TRUE(failpoint_configure(
        "vm.commit=p:1.0,vm.decommit=every:2,extent.grow=burst:1@1"));
    EXPECT_TRUE(failpoint_should_fail(Failpoint::kVmCommit));
    EXPECT_FALSE(failpoint_should_fail(Failpoint::kVmDecommit));
    EXPECT_TRUE(failpoint_should_fail(Failpoint::kVmDecommit));
    EXPECT_FALSE(failpoint_should_fail(Failpoint::kExtentGrow));
    EXPECT_TRUE(failpoint_should_fail(Failpoint::kExtentGrow));
}

TEST_F(FailpointTest, ConfigureAcceptsSemicolonsAndSeedAndOff)
{
    ASSERT_TRUE(
        failpoint_configure("seed=7;vm.purge=prob:1.0;vm.purge=off"));
    EXPECT_FALSE(failpoint_should_fail(Failpoint::kVmPurge));
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs)
{
    EXPECT_FALSE(failpoint_configure("vm.commit"));
    EXPECT_FALSE(failpoint_configure("vm.commit=p:1.5"));
    EXPECT_FALSE(failpoint_configure("vm.commit=every:0"));
    EXPECT_FALSE(failpoint_configure("vm.commit=burst:0"));
    EXPECT_FALSE(failpoint_configure("no.such.site=p:0.5"));
    EXPECT_FALSE(failpoint_configure("vm.commit=banana:1"));
    EXPECT_FALSE(failpoint_configure("seed=notanumber"));
}

TEST_F(FailpointTest, ResetCountersZeroesTotals)
{
    failpoint_arm(Failpoint::kVmCommit, FailpointPolicy::prob(1.0));
    (void)failpoint_should_fail(Failpoint::kVmCommit);
    EXPECT_GT(failpoint_evaluations(Failpoint::kVmCommit), 0u);
    failpoint_reset_counters();
    EXPECT_EQ(failpoint_evaluations(Failpoint::kVmCommit), 0u);
    EXPECT_EQ(failpoint_hits(Failpoint::kVmCommit), 0u);
}

TEST_F(FailpointTest, DisarmAllCoversEverySite)
{
    for (unsigned i = 0; i < kNumFailpoints; ++i) {
        failpoint_arm(static_cast<Failpoint>(i),
                      FailpointPolicy::prob(1.0));
    }
    failpoint_disarm_all();
    for (unsigned i = 0; i < kNumFailpoints; ++i)
        EXPECT_FALSE(failpoint_should_fail(static_cast<Failpoint>(i)));
}

}  // namespace
}  // namespace msw::util
