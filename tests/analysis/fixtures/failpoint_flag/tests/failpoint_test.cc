// Fixture: kBeta has an injection site but no test reference.
#include "util/failpoint.h"

int
main()
{
    return static_cast<int>(msw::util::Failpoint::kAlpha);
}
