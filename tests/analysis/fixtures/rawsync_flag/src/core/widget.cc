// Fixture: raw std::mutex / std::lock_guard outside src/util must flag
// MSW-RAW-SYNC (invisible to annotations and lock-rank checking).
#include <mutex>

namespace msw::core {

class Widget
{
  public:
    void poke();

  private:
    std::mutex mu_;
};

void
poke_widget(Widget& w)
{
    (void)w;
    static std::mutex g_mu;
    std::lock_guard<std::mutex> g(g_mu);
}

}  // namespace msw::core
