// Fixture: state flags and timestamps are not statistics; and counters
// outside src/core|src/alloc (e.g. src/metrics) are out of scope.
#pragma once
#include <atomic>
#include <cstdint>

namespace msw::core {

class Cache
{
  private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> last_epoch_ns_{0};
};

}  // namespace msw::core
