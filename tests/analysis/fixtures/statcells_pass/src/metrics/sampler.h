#pragma once
#include <atomic>
#include <cstdint>

namespace msw::metrics {

class Sampler
{
  private:
    std::atomic<std::uint64_t> sample_count_{0};
};

}  // namespace msw::metrics
