// Fixture: an unannotated pointer-payload CAS loop is ABA-prone and
// must be flagged by MSW-CAS-LOOP.
#include <atomic>

struct Node {
    Node* next;
};

namespace {

std::atomic<Node*> g_head{nullptr};

}  // namespace

Node*
pop()
{
    Node* expected = g_head.load(std::memory_order_acquire);
    while (expected != nullptr) {
        if (g_head.compare_exchange_weak(expected, expected->next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
            break;
    }
    return expected;
}
