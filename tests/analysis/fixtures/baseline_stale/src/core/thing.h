#pragma once

namespace msw::core {

// Deliberately clean: the baseline next door suppresses a finding that
// no longer exists, which must be reported as a stale suppression
// (configuration error, exit 2).
struct Thing
{
    int value = 0;
};

}  // namespace msw::core
