// Fixture: src/util is the one place raw primitives may live (this is
// where the annotated wrappers themselves are implemented).
#pragma once
#include <mutex>

namespace msw::util {

struct LegacyHolder {
    std::mutex raw_mu;
};

}  // namespace msw::util
