// Fixture: the ranked wrappers and std::condition_variable_any are the
// sanctioned spellings outside src/util.
#include <condition_variable>

namespace msw::core {

struct Widget {
    int guarded_value = 0;
    std::condition_variable_any cv;
};

}  // namespace msw::core
