// Fixture: pointer->pointer reinterpret_cast (typed view of a byte
// buffer) carries provenance and is allowed.
namespace msw::core {

char*
as_bytes(void* p)
{
    return reinterpret_cast<char*>(p);
}

}  // namespace msw::core
