// Fixture: the VM layer is where pointer<->integer conversion lives.
#include <cstdint>

namespace msw::vm {

std::uintptr_t
map_addr(const void* p)
{
    return reinterpret_cast<std::uintptr_t>(p);
}

void*
map_ptr(std::uintptr_t a)
{
    return reinterpret_cast<void*>(a);
}

}  // namespace msw::vm
