// Fixture: an annotation naming a protocol that is not declared in
// the DESIGN.md section-13 table must be flagged as doc drift.
#include <atomic>

namespace {

std::atomic<unsigned> g_spins{0};

}  // namespace

void
spin_note()
{
    // msw-relaxed(ghost-proto): tally; only RMW atomicity matters.
    g_spins.fetch_add(1, std::memory_order_relaxed);
}
