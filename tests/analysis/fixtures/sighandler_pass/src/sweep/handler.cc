// Fixture: an installed signal handler confined to async-signal-safe
// operations (atomics, raw writes, reinstall-and-reraise) must stay
// clean under MSW-REENTRANT-ALLOC.
#include <csignal>
#include <unistd.h>

#include <atomic>

namespace {

std::atomic<unsigned long> g_fault_count{0};

void
write_marker()
{
    const char msg[] = "fault\n";
    ::write(2, msg, sizeof(msg) - 1);
}

void
fault_handler(int sig, siginfo_t* info, void* uctx)
{
    (void)info;
    (void)uctx;
    // msw-relaxed(fault-count): signal-context tally; the reader
    // polls after the raise, so only RMW atomicity matters.
    g_fault_count.fetch_add(1, std::memory_order_relaxed);
    write_marker();
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

}  // namespace

void
install_fault_handler()
{
    struct sigaction sa = {};
    sa.sa_sigaction = fault_handler;
    sa.sa_flags = SA_SIGINFO;
    ::sigaction(SIGSEGV, &sa, nullptr);
}
