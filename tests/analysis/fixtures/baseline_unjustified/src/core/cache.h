// Fixture: a fresh atomic counter member in the runtime layers must be
// routed through core::StatCells instead.
#pragma once
#include <atomic>
#include <cstdint>

namespace msw::core {

class Cache
{
  private:
    std::atomic<std::uint64_t> hit_count_{0};
};

}  // namespace msw::core
