// Fixture: a SIGUSR2 stats-dump handler confined to async-signal-safe
// operations — relaxed atomic reads, stack formatting, write(2) — must
// stay clean under MSW-SIGNAL-SAFE.
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace {

std::atomic<unsigned long> g_pause_count{0};
std::atomic<unsigned long> g_pause_ns{0};

void
write_counter(int fd, const char* name, unsigned long value)
{
    char buf[64];
    unsigned n = 0;
    while (name[n] != '\0' && n < 32) {
        buf[n] = name[n];
        ++n;
    }
    buf[n++] = '=';
    // Decimal render into the stack buffer, no libc formatting.
    char digits[20];
    unsigned d = 0;
    do {
        digits[d++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0 && d < sizeof(digits));
    while (d > 0)
        buf[n++] = digits[--d];
    buf[n++] = '\n';
    ssize_t ignored = ::write(fd, buf, n);
    (void)ignored;
}

void
dump_stats(int fd)
{
    // msw-relaxed(dump-stats): statistics read from signal context;
    // a torn total is impossible (single 64-bit cells) and staleness
    // only dates the diagnostic snapshot.
    write_counter(fd, "pauses",
                  g_pause_count.load(std::memory_order_relaxed));
    // msw-relaxed(dump-stats): as above — diagnostic snapshot read.
    write_counter(fd, "pause_ns",
                  g_pause_ns.load(std::memory_order_relaxed));
}

void
usr2_handler(int sig)
{
    (void)sig;
    const int saved_errno = errno;
    dump_stats(2);
    errno = saved_errno;
}

}  // namespace

namespace msw::metrics {

void
record_pause(unsigned long ns)
{
    // msw-relaxed(dump-stats): monotonic tallies; readers tolerate
    // cross-cell skew between the two counters.
    g_pause_count.fetch_add(1, std::memory_order_relaxed);
    // msw-relaxed(dump-stats): as above — monotonic tally.
    g_pause_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
install_stats_handler()
{
    struct sigaction sa = {};
    sa.sa_handler = usr2_handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR2, &sa, nullptr);
}

}  // namespace msw::metrics
