// Fixture: placement new on static storage is the sanctioned bootstrap
// pattern, and allocating helpers that are NOT reachable from an entry
// point (address-taken callbacks) are allowed.
#include <cerrno>
#include <new>
#include <string>

alignas(16) char g_storage[64];

void*
boot_object()
{
    return new (g_storage) int{0};
}

std::string
debug_string()
{
    return std::string("not reachable from any entry point");
}

extern "C" {

void*
malloc(unsigned long size)
{
    (void)size;
    const int saved_errno = errno;
    void* p = boot_object();
    errno = saved_errno;
    return p;
}

}  // extern "C"
