// Fixture: a section-13 row that no annotation references is doc
// drift and must fail the run.
#include <atomic>

namespace {

std::atomic<bool> g_flag{false};

}  // namespace

bool
peek()
{
    // msw-relaxed(live-proto): advisory read; staleness is harmless.
    return g_flag.load(std::memory_order_relaxed);
}
