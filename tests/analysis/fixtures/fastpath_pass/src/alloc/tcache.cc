#include "alloc/cache.h"

namespace msw::alloc {

// The sanctioned boundary: the traversal stops here, so the lock
// acquisition below is not charged to the fast path.
// msw-analyze: slow-path(refill is amortised over the batch size)
void*
FreeList::take_slow()
{
    LockGuard g(list_lock_);
    return nullptr;
}

void*
refill(FreeList* fl)
{
    return fl->take_slow();
}

// msw-analyze: fast-path
void*
cache_alloc(FreeList* fl)
{
    return refill(fl);
}

}  // namespace msw::alloc
