// Fixture: pointer->integer reinterpret_cast outside src/util|src/vm
// must flag MSW-UB-PTR-CAST (use msw::to_addr).
#include <cstdint>

namespace msw::core {

std::uintptr_t
probe_addr(const void* p)
{
    return reinterpret_cast<std::uintptr_t>(p);
}

}  // namespace msw::core
