// Fixture: an entry point that neither delegates nor saves/restores
// errno must flag MSW-SHIM-ERRNO.
static char g_arena[4096];
static unsigned long g_cursor = 0;

void*
engine_alloc(unsigned long size)
{
    void* p = g_arena + g_cursor;
    g_cursor += size;
    return p;
}

extern "C" {

void*
malloc(unsigned long size)
{
    return engine_alloc(size);
}

}  // extern "C"
