// Fixture: a correctly-annotated relaxed tally plus a paired
// release/acquire flag must stay clean under MSW-ATOMIC-ORDER.
#include <atomic>

namespace {

std::atomic<bool> g_ready{false};
std::atomic<unsigned> g_events{0};

}  // namespace

void
producer()
{
    // msw-relaxed(ready-flag): tally bump before the publishing
    // release store below; only RMW atomicity is needed.
    g_events.fetch_add(1, std::memory_order_relaxed);
    g_ready.store(true, std::memory_order_release);
}

unsigned
consumer()
{
    if (!g_ready.load(std::memory_order_acquire))
        return 0;
    // msw-relaxed(ready-flag): the acquire load above already
    // synchronised with the producer's release store.
    return g_events.load(std::memory_order_relaxed);
}
