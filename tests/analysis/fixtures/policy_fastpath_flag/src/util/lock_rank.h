#pragma once

namespace msw::util {

enum class LockRank : unsigned char {
    kAlpha = 10,
    kUnranked = 255,  ///< Opted out of rank checking.
};

}  // namespace msw::util
