#include "alloc/policy.h"

namespace msw::alloc {

SlotRng g_slot_rng;

unsigned
SlotRng::next_below(unsigned bound)
{
    LockGuard g(rng_lock_);
    return bound - 1;
}

// A policy hook that serialises every caller on a process-global RNG
// lock: the tagged fast path below reaches the acquisition two hops
// away with no slow-path boundary in between, so a finding.
unsigned
hardened_choose_slot(unsigned nslots)
{
    return g_slot_rng.next_below(nslots);
}

// msw-analyze: fast-path
unsigned
slab_alloc_slot(unsigned nslots)
{
    return hardened_choose_slot(nslots);
}

}  // namespace msw::alloc
