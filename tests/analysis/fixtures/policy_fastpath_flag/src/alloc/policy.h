#pragma once

#include "util/mutex.h"

namespace msw::alloc {

/// Allocation-policy hook consulted on the allocation fast path:
/// implementations must stay lock-free.
unsigned hardened_choose_slot(unsigned nslots);

class SlotRng
{
  public:
    unsigned next_below(unsigned bound);

  private:
    Mutex rng_lock_{util::LockRank::kAlpha};
};

}  // namespace msw::alloc
