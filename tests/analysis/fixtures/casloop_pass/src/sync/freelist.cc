// Fixture: a pointer-payload CAS loop whose ABA exposure is defused
// and documented with msw-cas(<protocol>) must stay clean.
#include <atomic>

struct Node {
    Node* next;
};

namespace {

std::atomic<Node*> g_head{nullptr};

}  // namespace

Node*
pop()
{
    Node* expected = g_head.load(std::memory_order_acquire);
    while (expected != nullptr) {
        // msw-cas(free-list): single-consumer pop; nodes are never
        // freed while a popper runs, so no ABA exposure.
        if (g_head.compare_exchange_weak(expected, expected->next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
            break;
    }
    return expected;
}
