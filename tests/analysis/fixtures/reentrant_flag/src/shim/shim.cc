// Fixture: std::vector growth reachable from a malloc entry point must
// flag MSW-REENTRANT-ALLOC (LD_PRELOAD would recurse into this shim).
#include <cerrno>
#include <vector>

void*
grow_with_vector(unsigned long size)
{
    std::vector<char> scratch(size);
    return scratch.data();
}

extern "C" {

void*
malloc(unsigned long size)
{
    const int saved_errno = errno;
    void* p = grow_with_vector(size);
    errno = saved_errno;
    return p;
}

}  // extern "C"
