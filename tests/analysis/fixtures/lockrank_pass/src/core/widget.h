#pragma once

#include "util/mutex.h"

namespace msw::core {

class Widget
{
  private:
    Mutex mu_{util::LockRank::kAlpha};
};

class Gadget
{
  private:
    Mutex mu_{util::LockRank::kBeta};
};

}  // namespace msw::core
