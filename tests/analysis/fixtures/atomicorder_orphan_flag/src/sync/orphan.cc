// Fixture: a release store with no acquire-side access of the same
// atomic anywhere in the program is an orphaned release.
#include <atomic>

namespace {

std::atomic<int> g_gate{0};

}  // namespace

void
open_gate()
{
    g_gate.store(1, std::memory_order_release);
}
