#pragma once

#include "util/mutex.h"

namespace msw::alloc {

class FreeList
{
  public:
    void* take_slow();

  private:
    Mutex list_lock_{util::LockRank::kAlpha};
};

}  // namespace msw::alloc
