#include "alloc/cache.h"

namespace msw::alloc {

void*
FreeList::take_slow()
{
    LockGuard g(list_lock_);
    return nullptr;
}

void*
refill(FreeList* fl)
{
    return fl->take_slow();
}

// Tagged fast path reaching a global-lock acquisition two hops away,
// with no slow-path boundary in between: a finding.
// msw-analyze: fast-path
void*
cache_alloc(FreeList* fl)
{
    return refill(fl);
}

}  // namespace msw::alloc
