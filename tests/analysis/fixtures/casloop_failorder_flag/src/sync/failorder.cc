// Fixture: a CAS whose failure order is stronger than its success
// order must be flagged by MSW-CAS-LOOP.
#include <atomic>

namespace {

std::atomic<int> g_state{0};

}  // namespace

bool
claim(int from, int to)
{
    int expected = from;
    return g_state.compare_exchange_strong(expected, to,
                                           std::memory_order_acquire,
                                           std::memory_order_seq_cst);
}
