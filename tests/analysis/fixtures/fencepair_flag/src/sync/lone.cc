// Fixture: a release fence with no acquire fence anywhere in the
// program (and no msw-fence name) must be flagged.
#include <atomic>

namespace {

int g_payload = 0;

}  // namespace

void
publish(int v)
{
    g_payload = v;
    std::atomic_thread_fence(std::memory_order_release);
}
