#include "core/widget.h"

namespace msw::core {

void
High::poke()
{
    LockGuard g(high_mu_);
}

void
touch_high(High* high)
{
    high->poke();
}

// Same two-hop shape as the flag fixture, but the order is correct:
// kAlpha (10) is held while kBeta (20) is acquired — strictly
// increasing, so no finding.
void
Low::deep(High* high)
{
    LockGuard g(low_mu_);
    touch_high(high);
}

}  // namespace msw::core
