#pragma once

#include "util/mutex.h"

namespace msw::core {

class Low
{
  public:
    void deep(High* high);

  private:
    Mutex low_mu_{util::LockRank::kAlpha};
};

class High
{
  public:
    void poke();

  private:
    Mutex high_mu_{util::LockRank::kBeta};
};

}  // namespace msw::core
