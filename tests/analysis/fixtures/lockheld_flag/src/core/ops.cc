#include "core/widget.h"

namespace msw::core {

void
Low::poke()
{
    LockGuard g(low_mu_);
}

void
touch_low(Low* low)
{
    low->poke();
}

// Inversion, two call hops deep: deep() holds kBeta (20) and reaches an
// acquisition of kAlpha (10) via touch_low().
void
High::deep(Low* low)
{
    LockGuard g(high_mu_);
    touch_low(low);
}

}  // namespace msw::core
