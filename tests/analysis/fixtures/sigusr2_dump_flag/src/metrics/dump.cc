// Fixture: a SIGUSR2 stats-dump handler that reaches stdio formatting
// (snprintf/fopen) one call hop away — another thread may hold the
// stdio or malloc lock when the signal lands, so MSW-SIGNAL-SAFE must
// flag it.
#include <csignal>

#include <atomic>
#include <cstdio>

namespace {

std::atomic<unsigned long> g_pause_count{0};

void
dump_stats()
{
    // snprintf is not async-signal-safe; fopen allocates.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "pauses=%lu\n",
                  g_pause_count.load(std::memory_order_acquire));
    std::FILE* f = std::fopen("/tmp/msw-stats.txt", "w");
    if (f != nullptr) {
        std::fputs(buf, f);
        std::fclose(f);
    }
}

void
usr2_handler(int sig)
{
    (void)sig;
    dump_stats();
}

}  // namespace

namespace msw::metrics {

void
record_pause()
{
    g_pause_count.fetch_add(1, std::memory_order_release);
}

void
install_stats_handler()
{
    struct sigaction sa = {};
    sa.sa_handler = usr2_handler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGUSR2, &sa, nullptr);
}

}  // namespace msw::metrics
