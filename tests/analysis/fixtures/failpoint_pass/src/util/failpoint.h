#pragma once

namespace msw::util {

enum class Failpoint : unsigned {
    kAlpha = 0,  ///< "alpha".
    kBeta,       ///< "beta".
    kCount,
};

bool failpoint_should_fail(Failpoint fp);

}  // namespace msw::util
