#include "util/failpoint.h"

namespace msw::vm {

bool
poke_alpha()
{
    return util::failpoint_should_fail(util::Failpoint::kAlpha);
}

bool
poke_beta()
{
    return util::failpoint_should_fail(util::Failpoint::kBeta);
}

}  // namespace msw::vm
