#include "util/failpoint.h"

int
main()
{
    return static_cast<int>(msw::util::Failpoint::kAlpha) +
           static_cast<int>(msw::util::Failpoint::kBeta);
}
