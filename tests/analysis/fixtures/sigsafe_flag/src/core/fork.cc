#include <pthread.h>

#include <cstdio>

namespace msw::core {

void
report_state()
{
    std::fprintf(stderr, "[msw] child resumed\n");
}

// Fork-child hook reaching fprintf one call hop away: another thread
// may have held the stdio lock at fork time, so this can deadlock.
void
atfork_child()
{
    report_state();
}

void
install_hooks()
{
    pthread_atfork(nullptr, nullptr, &atfork_child);
}

}  // namespace msw::core
