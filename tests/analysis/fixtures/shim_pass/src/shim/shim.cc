// Fixture: errno save/restore and delegation to another entry point are
// both hygienic.
#include <cerrno>

static char g_arena[4096];
static unsigned long g_cursor = 0;

void*
engine_alloc(unsigned long size)
{
    void* p = g_arena + g_cursor;
    g_cursor += size;
    return p;
}

extern "C" {

void*
malloc(unsigned long size)
{
    const int saved_errno = errno;
    void* p = engine_alloc(size);
    errno = saved_errno;
    return p;
}

void*
valloc(unsigned long size)
{
    return malloc(size);
}

}  // extern "C"
