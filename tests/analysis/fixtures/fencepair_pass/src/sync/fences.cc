// Fixture: a release fence paired with an acquire fence elsewhere in
// the program must stay clean under MSW-FENCE-PAIR.
#include <atomic>

namespace {

std::atomic<int> g_flag{0};
int g_payload = 0;

}  // namespace

void
publish(int v)
{
    g_payload = v;
    std::atomic_thread_fence(std::memory_order_release);
    // msw-relaxed(fence-handoff): the release fence above orders the
    // payload write before this flag store.
    g_flag.store(1, std::memory_order_relaxed);
}

int
consume()
{
    // msw-relaxed(fence-handoff): the acquire fence below orders the
    // payload read after this flag load.
    if (g_flag.load(std::memory_order_relaxed) == 0)
        return 0;
    std::atomic_thread_fence(std::memory_order_acquire);
    return g_payload;
}
