// Fixture: an installed signal handler that reaches an allocating
// construct must flag MSW-REENTRANT-ALLOC — the signal can land while a
// mutator holds the allocator's own locks, so the handler's allocation
// deadlocks (or corrupts) the heap it interrupted.
#include <csignal>
#include <string>

namespace {

std::string
format_report(unsigned long addr)
{
    return "fault at " + std::to_string(addr);
}

void
fault_handler(int sig, siginfo_t* info, void* uctx)
{
    (void)sig;
    (void)uctx;
    format_report(reinterpret_cast<unsigned long>(info->si_addr));
}

}  // namespace

void
install_fault_handler()
{
    struct sigaction sa = {};
    sa.sa_sigaction = fault_handler;
    sa.sa_flags = SA_SIGINFO;
    ::sigaction(SIGSEGV, &sa, nullptr);
}
