// Fixture: an access that defaults its memory order to seq_cst must
// be flagged — the order has to be an explicit decision.
#include <atomic>

namespace {

std::atomic<unsigned long> g_hits{0};

}  // namespace

void
hit()
{
    g_hits.fetch_add(1);
}
