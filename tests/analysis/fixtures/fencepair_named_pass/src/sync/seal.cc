// Fixture: a lone acquire fence whose partner is documented via
// msw-fence(<protocol>) must stay clean under MSW-FENCE-PAIR.
#include <atomic>

namespace {

std::atomic<int> g_sealed{0};

}  // namespace

void
seal()
{
    // msw-relaxed(seal-handoff): the mprotect barrier the protocol
    // documents is the real ordering point for this flag.
    g_sealed.store(1, std::memory_order_relaxed);
}

int
check()
{
    // msw-relaxed(seal-handoff): advisory read; re-validated after
    // the fence below.
    const int s = g_sealed.load(std::memory_order_relaxed);
    // msw-fence(seal-handoff): pairs with the kernel-side barrier of
    // the mprotect call that sealed the page, not a fence in src/.
    std::atomic_thread_fence(std::memory_order_acquire);
    return s;
}
