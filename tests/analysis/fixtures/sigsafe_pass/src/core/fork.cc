#include <pthread.h>
#include <unistd.h>

#include <cstdio>

namespace msw::core {

// msw-analyze: fork-deferred(only runs from the watchdog thread, which
// the child hook restarts after reinitialising the allocator locks)
void
relatch_logging()
{
    std::fprintf(stderr, "[msw] logging relatched\n");
}

void
atfork_child()
{
    // write(2) is async-signal-safe; the fprintf lives behind the
    // fork-deferred boundary above.
    const char msg[] = "[msw] child\n";
    ssize_t ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
    relatch_logging();
}

void
install_hooks()
{
    pthread_atfork(nullptr, nullptr, &atfork_child);
}

}  // namespace msw::core
