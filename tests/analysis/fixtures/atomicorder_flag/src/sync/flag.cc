// Fixture: a relaxed access with no msw-relaxed(<protocol>) comment
// must be flagged by MSW-ATOMIC-ORDER.
#include <atomic>

namespace {

std::atomic<unsigned> g_ticks{0};

}  // namespace

void
tick()
{
    g_ticks.fetch_add(1, std::memory_order_relaxed);
}
