#include "alloc/policy.h"

namespace msw::alloc {

thread_local SlotRng t_slot_rng;

// Per-thread state: advancing the generator takes no lock, so the
// hook below is safe to reach from the tagged fast path.
unsigned
SlotRng::next_below(unsigned bound)
{
    state_ = state_ * 6364136223846793005ul + 1442695040888963407ul;
    return static_cast<unsigned>(state_ >> 33) % bound;
}

// The sanctioned boundary: reseeding hits the global seed lock, but
// the traversal stops here, so it is not charged to the fast path.
// msw-analyze: slow-path(reseed runs once per fork, not per alloc)
void
SlotRng::reseed_slow()
{
    LockGuard g(seed_lock_);
    state_ = 42;
}

unsigned
hardened_choose_slot(unsigned nslots)
{
    return t_slot_rng.next_below(nslots);
}

// msw-analyze: fast-path
unsigned
slab_alloc_slot(unsigned nslots)
{
    if (nslots == 0)
        t_slot_rng.reseed_slow();
    return hardened_choose_slot(nslots);
}

}  // namespace msw::alloc
