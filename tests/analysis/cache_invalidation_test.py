#!/usr/bin/env python3
"""Regression test: the incremental cache keys per-file facts on the
*include closure*, not just the file's own sha256.

Atomics protocols live in headers (`util/spin_lock.h`,
`sweep/shadow_map.h` in the real tree): an edit there changes what a
dependent .cc file's extracted facts mean, so the dependents must
re-extract (cold) while unrelated files stay warm. Before the
closure-keyed cache, a header touch invalidated only the header's own
entry and dependents served stale facts.

Builds a hermetic mini tree (header + one includer + one bystander),
then asserts via the `--timings` fact-counter line:
  1. cold run  -> fact misses > 0,
  2. warm run  -> fact misses == 0,
  3. header touched -> both header and includer miss (>= 2 files'
     worth of keyed lookups), bystander still hits,
  4. warm again -> fact misses == 0.
"""

import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
ANALYZE = os.path.join(REPO, "tools", "analysis", "msw_analyze.py")

HEADER = """\
#pragma once

#include <atomic>

namespace mini {

inline std::atomic<bool>& flag_ref()
{
    static std::atomic<bool> flag{false};
    return flag;
}

inline bool peek_flag()
{
    // msw-relaxed(mini-flag): advisory read; staleness is harmless.
    return flag_ref().load(std::memory_order_relaxed);
}

}  // namespace mini
"""

INCLUDER = """\
#include "util/mini_flag.h"

bool poll()
{
    return mini::peek_flag();
}
"""

BYSTANDER = """\
namespace mini {

int bystander()
{
    return 42;
}

}  // namespace mini
"""

DESIGN = """\
# Mini tree design notes

## 13. Lock-free protocols

| Protocol | Atomics | Why the weak ordering is sound |
|----------|---------|--------------------------------|
| `mini-flag` | `flag` | Advisory flag; staleness is harmless. |
"""

FACTS_RE = re.compile(
    r"facts (\d+) hit\(s\), (\d+) miss\(es\)")


def run(root, build):
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--root", root, "--build", build,
         "--engine", "textual", "--timings"],
        capture_output=True, text=True)
    out = proc.stdout + proc.stderr
    if proc.returncode != 0:
        raise AssertionError(
            f"analyzer exited {proc.returncode} on the mini tree:\n{out}")
    m = FACTS_RE.search(out)
    if not m:
        raise AssertionError(f"no facts hit/miss line in output:\n{out}")
    return int(m.group(1)), int(m.group(2))


def main():
    with tempfile.TemporaryDirectory() as tmp:
        build = os.path.join(tmp, "build")
        os.makedirs(os.path.join(tmp, "src", "util"))
        os.makedirs(os.path.join(tmp, "src", "core"))
        os.makedirs(build)
        paths = {
            "src/util/mini_flag.h": HEADER,
            "src/core/poller.cc": INCLUDER,
            "src/core/bystander.cc": BYSTANDER,
            "DESIGN.md": DESIGN,
        }
        for rel, content in paths.items():
            with open(os.path.join(tmp, rel), "w",
                      encoding="utf-8") as f:
                f.write(content)

        hits, misses = run(tmp, build)
        assert misses > 0, f"cold run should miss (got {misses})"

        hits, misses = run(tmp, build)
        assert misses == 0, \
            f"warm run must be all hits (got {misses} miss(es))"
        assert hits > 0, "warm run should serve from the cache"

        # Touch the header: a comment-only edit still changes its sha,
        # hence the include-closure key of every dependent.
        header = os.path.join(tmp, "src", "util", "mini_flag.h")
        with open(header, "a", encoding="utf-8") as f:
            f.write("// touched: closure keys must churn\n")

        hits, misses = run(tmp, build)
        assert misses >= 4, (
            "header touch must cold-re-extract the header AND its "
            f"includer (>= 2 files x 2 fact kinds; got {misses})")
        assert hits > 0, \
            "the bystander file must still be served warm"

        hits, misses = run(tmp, build)
        assert misses == 0, \
            f"post-touch warm run must be all hits (got {misses})"

    print("cache_invalidation_test: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
