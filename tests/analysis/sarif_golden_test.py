#!/usr/bin/env python3
"""Golden-file test for the SARIF 2.1.0 writer (msw_sarif.py).

Runs the analyzer over a hermetic mini tree that produces one finding
from each engine tier — a declaration-shaped textual rule
(MSW-RAW-SYNC), an interprocedural reachability rule
(MSW-SIGNAL-SAFE), and an atomics rule (MSW-ATOMIC-ORDER) — plus one
baseline-suppressed finding, then compares the interesting SARIF
fields (ruleIndex wiring, partialFingerprints, suppression records,
locations) against the checked-in golden
`tests/analysis/golden/sarif_golden.json`.

The fingerprint values are part of the golden on purpose: they are
what keeps code-scanning alert identity stable across pushes, so a
silent change to the fingerprint scheme must fail this test.
Regenerate after a deliberate change with:

    python3 tests/analysis/sarif_golden_test.py --regen
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
ANALYZE = os.path.join(REPO, "tools", "analysis", "msw_analyze.py")
GOLDEN = os.path.join(REPO, "tests", "analysis", "golden",
                      "sarif_golden.json")

# Tier 1 (textual, declaration-shaped): a raw std::mutex outside
# src/util/.
RAW_SYNC = """\
#include <mutex>

namespace mini {

std::mutex g_registry_lock;

}  // namespace mini
"""

# Baseline-suppressed second finding of the same rule.
RAW_SYNC_SUPPRESSED = """\
#include <mutex>

namespace mini {

std::mutex g_legacy_lock;

}  // namespace mini
"""

# Tier 2 (interprocedural reachability): an atfork child hook reaching
# fprintf one call hop away.
SIGNAL_SAFE = """\
#include <pthread.h>

#include <cstdio>

namespace mini {

void report_state()
{
    std::fprintf(stderr, "[mini] child resumed\\n");
}

void atfork_child()
{
    report_state();
}

void install_hooks()
{
    pthread_atfork(nullptr, nullptr, &atfork_child);
}

}  // namespace mini
"""

# Tier 3 (atomics): an unannotated relaxed access.
ATOMIC_ORDER = """\
#include <atomic>

namespace mini {

std::atomic<unsigned> g_ticks{0};

void tick()
{
    g_ticks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mini
"""

BASELINE = ("MSW-RAW-SYNC|src/core/legacy.cc|std::mutex g_legacy_lock;"
            "  # legacy lock, migrated separately\n")


def produce_sarif():
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "core"))
        os.makedirs(os.path.join(tmp, "src", "sync"))
        paths = {
            "src/core/registry.cc": RAW_SYNC,
            "src/core/legacy.cc": RAW_SYNC_SUPPRESSED,
            "src/core/hooks.cc": SIGNAL_SAFE,
            "src/sync/ticks.cc": ATOMIC_ORDER,
            "baseline.txt": BASELINE,
        }
        for rel, content in paths.items():
            with open(os.path.join(tmp, rel), "w",
                      encoding="utf-8") as f:
                f.write(content)
        sarif_path = os.path.join(tmp, "out.sarif")
        proc = subprocess.run(
            [sys.executable, ANALYZE, "--root", tmp,
             "--engine", "textual", "--no-cache",
             "--baseline", os.path.join(tmp, "baseline.txt"),
             "--sarif", sarif_path],
            capture_output=True, text=True)
        if proc.returncode != 1:
            raise AssertionError(
                "expected exit 1 (findings) from the mini tree, got "
                f"{proc.returncode}:\n{proc.stdout}{proc.stderr}")
        with open(sarif_path, encoding="utf-8") as f:
            return json.load(f)


def normalize(doc):
    """The golden subset: everything identity- or shape-bearing, minus
    free prose (message wording may improve without churning alert
    identity — fingerprints hash it, so wording changes still surface
    in the fingerprint fields)."""
    run = doc["runs"][0]
    rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
    results = []
    for res in run["results"]:
        loc = res["locations"][0]["physicalLocation"]
        results.append({
            "ruleId": res["ruleId"],
            "ruleIndex": res["ruleIndex"],
            "ruleAtIndex": rules[res["ruleIndex"]],
            "uri": loc["artifactLocation"]["uri"],
            "startLine": loc["region"]["startLine"],
            "partialFingerprints": res["partialFingerprints"],
            "suppressions": [
                {"kind": s["kind"], "status": s["status"],
                 "justification": s.get("justification")}
                for s in res.get("suppressions", [])
            ] or None,
        })
    results.sort(key=lambda r: (r["ruleId"], r["uri"], r["startLine"]))
    return {
        "version": doc["version"],
        "driverName": run["tool"]["driver"]["name"],
        "columnKind": run["columnKind"],
        "ruleIds": rules,
        "results": results,
    }


def main():
    regen = "--regen" in sys.argv[1:]
    got = normalize(produce_sarif())

    tiers = {r["ruleId"] for r in got["results"]}
    for rule in ("MSW-RAW-SYNC", "MSW-SIGNAL-SAFE", "MSW-ATOMIC-ORDER"):
        assert rule in tiers, f"mini tree lost its {rule} finding"
    assert any(r["suppressions"] for r in got["results"]), \
        "baseline-suppressed finding lost its suppression record"
    for r in got["results"]:
        assert r["ruleAtIndex"] == r["ruleId"], \
            f"ruleIndex points at {r['ruleAtIndex']}, not {r['ruleId']}"
        assert r["partialFingerprints"].get("mswAnalyze/v1"), \
            f"missing mswAnalyze/v1 fingerprint on {r['ruleId']}"

    if regen:
        os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
        with open(GOLDEN, "w", encoding="utf-8") as f:
            json.dump(got, f, indent=2)
            f.write("\n")
        print(f"sarif_golden_test: regenerated {GOLDEN}")
        return 0

    with open(GOLDEN, encoding="utf-8") as f:
        want = json.load(f)
    if got != want:
        print("sarif_golden_test: FAIL — SARIF output diverged from "
              "the golden file.", file=sys.stderr)
        print("golden:", json.dumps(want, indent=2), file=sys.stderr)
        print("got:   ", json.dumps(got, indent=2), file=sys.stderr)
        print("If the change is deliberate, regenerate with: "
              "python3 tests/analysis/sarif_golden_test.py --regen",
              file=sys.stderr)
        return 1
    print("sarif_golden_test: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
