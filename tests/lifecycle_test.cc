// Process-lifecycle hardening: atfork survival (fork while allocating,
// fork while sweeping), the thread-exit auto-drain, fault
// classification and the opt-in crash reporter, and the lock-rank
// atfork bulk-acquisition window.
#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/lifecycle.h"
#include "core/minesweeper.h"
#include "util/bits.h"
#include "util/failpoint.h"
#include "util/lock_rank.h"
#include "util/rng.h"
#include "util/spin_lock.h"

namespace msw {
namespace {

using core::MineSweeper;
using core::Options;
using core::lifecycle::FaultClass;
using util::LockRank;

Options
small_options()
{
    Options o;
    o.min_sweep_bytes = 4096;  // sweep eagerly so tests see epochs move
    o.helper_threads = 2;
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

/** Fork, run @p child_fn in the child, assert it _exits 0. */
template <typename Fn>
void
fork_and_check(Fn&& child_fn)
{
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
        child_fn();
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child status " << status;
}

// Runs first (gtest preserves declaration order): no runtime exists in
// this process yet, so classification has nothing to consult.
TEST(Lifecycle, ClassifyWithoutRuntime)
{
    ASSERT_EQ(core::lifecycle::registered_runtime(), nullptr);
    int on_stack = 0;
    EXPECT_EQ(core::lifecycle::classify_fault(&on_stack),
              FaultClass::kNoRuntime);
}

TEST(Lifecycle, ClassifyFault)
{
    MineSweeper ms(small_options());
    ASSERT_EQ(core::lifecycle::registered_runtime(), &ms);

    int on_stack = 0;
    EXPECT_EQ(core::lifecycle::classify_fault(&on_stack),
              FaultClass::kOutsideHeap);
    EXPECT_EQ(core::lifecycle::classify_fault(nullptr),
              FaultClass::kOutsideHeap);

    void* live = ms.alloc(64);
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(core::lifecycle::classify_fault(live),
              FaultClass::kHeapLive);
    // Interior pointers classify through the same metadata.
    EXPECT_EQ(core::lifecycle::classify_fault(
                  to_ptr(to_addr(live) + 16)),
              FaultClass::kHeapLive);

    void* stale = ms.alloc(64);
    ASSERT_NE(stale, nullptr);
    ms.free(stale);
    std::uint64_t epoch = ~std::uint64_t{0};
    EXPECT_EQ(core::lifecycle::classify_fault(stale, &epoch),
              FaultClass::kQuarantined);
    EXPECT_EQ(epoch, ms.sweep_epoch());

    ms.free(live);
}

TEST(Lifecycle, RegistrationIsFirstWins)
{
    MineSweeper first(small_options());
    ASSERT_EQ(core::lifecycle::registered_runtime(), &first);
    {
        MineSweeper second(small_options());
        EXPECT_EQ(core::lifecycle::registered_runtime(), &first);
    }
    EXPECT_EQ(core::lifecycle::registered_runtime(), &first);
}

TEST(Lifecycle, ForkChildInheritsWorkingRuntime)
{
    MineSweeper ms(small_options());
    void* parent_block = ms.alloc(128);
    ASSERT_NE(parent_block, nullptr);

    fork_and_check([&] {
        // The child must be able to allocate, free, sweep and fork
        // again — every subsystem re-initialised by child_after_fork.
        std::vector<void*> ptrs;
        for (int i = 0; i < 512; ++i) {
            void* p = ms.alloc(static_cast<std::size_t>(32 + i % 512));
            if (p == nullptr)
                _exit(2);
            ptrs.push_back(p);
        }
        // The inherited block is live in the child too.
        if (core::lifecycle::classify_fault(parent_block) !=
            FaultClass::kHeapLive) {
            _exit(3);
        }
        for (void* p : ptrs)
            ms.free(p);
        ms.force_sweep();  // lazily respawns the sweeper in the child
        const pid_t grandchild = fork();
        if (grandchild == 0)
            _exit(0);
        if (grandchild < 0)
            _exit(4);
        int status = 0;
        if (waitpid(grandchild, &status, 0) != grandchild ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            _exit(5);
        }
    });

    // The parent side must be unaffected.
    void* after = ms.alloc(64);
    ASSERT_NE(after, nullptr);
    ms.free(after);
    ms.free(parent_block);
    ms.force_sweep();
}

TEST(Lifecycle, ForkWhileSweeping)
{
    util::lock_rank_set_enabled(true);
    Options o = small_options();
    o.helper_threads = 4;
    MineSweeper ms(o);

    // Hold sweeps open so fork() reliably lands mid-sweep: the prepare
    // handler must quiesce the sweep before freezing the hierarchy.
    util::failpoint_arm(util::Failpoint::kSweepDelay,
                        util::FailpointPolicy::burst(40));
    std::atomic<bool> stop{false};
    std::thread churn([&] {
        ms.register_mutator_thread();
        while (!stop.load(std::memory_order_relaxed)) {
            void* p = ms.alloc(256);
            if (p != nullptr)
                ms.free(p);
        }
        ms.unregister_mutator_thread();
    });

    for (int round = 0; round < 8; ++round) {
        ms.force_sweep();
        fork_and_check([&] {
            void* p = ms.alloc(64);
            if (p == nullptr)
                _exit(2);
            ms.free(p);
            ms.force_sweep();
        });
    }
    stop.store(true, std::memory_order_relaxed);
    churn.join();
    util::failpoint_disarm(util::Failpoint::kSweepDelay);
    util::lock_rank_set_enabled(false);
}

TEST(Lifecycle, ForkClaimsSweepTokenUnderForceSweepPressure)
{
    Options o = small_options();
    o.min_sweep_bytes = 16 << 10;
    o.watchdog_timeout_ms = 50;
    MineSweeper ms(o);

    // Saturate the sweep token: with a short watchdog every force_sweep
    // waiter self-serves, so sweeps run back-to-back and the token is
    // almost never observably free. prepare_fork() must *claim* the
    // token through the fork gate rather than wait to see it idle — an
    // observing quiesce starves here (each poll lands mid-sweep; 30 s+
    // stalls were reproduced before the gate existed).
    std::atomic<bool> stop{false};
    std::vector<std::thread> pressure;
    for (int i = 0; i < 4; ++i) {
        pressure.emplace_back([&] {
            ms.register_mutator_thread();
            while (!stop.load(std::memory_order_relaxed)) {
                void* p = ms.alloc(4096);
                if (p != nullptr)
                    ms.free(p);
                ms.force_sweep();
            }
            ms.unregister_mutator_thread();
        });
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < 10; ++round) {
        fork_and_check([&] {
            void* p = ms.alloc(64);
            if (p == nullptr)
                _exit(2);
            ms.free(p);
        });
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : pressure)
        t.join();

    // Generous bound: each fork waits out at most one in-flight sweep
    // plus scheduler noise. The regression this guards against is
    // unbounded, so the margin can be wide without going stale.
    EXPECT_LT(elapsed, std::chrono::seconds(20));
}

TEST(Lifecycle, ForkChildFailpointDegradesToSynchronousSweeps)
{
    MineSweeper ms(small_options());
    // fork.child: the child "loses" its sweeper respawn mark; sweeps
    // must still be served through the watchdog/force fallback paths.
    util::failpoint_arm(util::Failpoint::kForkChild,
                        util::FailpointPolicy::every(1));
    fork_and_check([&] {
        util::failpoint_disarm_all();
        void* p = ms.alloc(64);
        if (p == nullptr)
            _exit(2);
        ms.free(p);
        ms.force_sweep();
        if (ms.sweep_epoch() == 0)
            _exit(3);
    });
    util::failpoint_disarm(util::Failpoint::kForkChild);
}

TEST(Lifecycle, ThreadExitDrainsWithoutUnregister)
{
    MineSweeper ms(small_options());
    ASSERT_EQ(core::lifecycle::registered_runtime(), &ms);
    const std::size_t baseline_threads = ms.mutator_thread_count();

    // thread.exit: delay the TSD drain to widen the exit window.
    util::failpoint_arm(util::Failpoint::kThreadExit,
                        util::FailpointPolicy::every(2));
    std::vector<void*> leaked(8, nullptr);
    std::thread t([&] {
        ms.register_mutator_thread();
        for (void*& p : leaked) {
            p = ms.alloc(4096);
            ASSERT_NE(p, nullptr);
            ms.free(p);  // parks in this thread's quarantine buffer
        }
        // Exit WITHOUT unregister_mutator_thread(): the lifecycle TSD
        // destructor must drain the buffer and drop the registration.
    });
    t.join();
    util::failpoint_disarm(util::Failpoint::kThreadExit);

    EXPECT_EQ(ms.mutator_thread_count(), baseline_threads);

    // The frees must not be stranded: a sweep (no dangling pointers
    // remain — the pointers below are the quarantine's own records)
    // releases every one of them.
    leaked.assign(leaked.size(), nullptr);
    ms.force_sweep();
    ms.force_sweep();  // entries buffered mid-lock-in need a 2nd pass
    EXPECT_EQ(ms.stats().quarantine_bytes, 0u)
        << "quarantined bytes stranded by a dead thread";
}

TEST(Lifecycle, ManualUnregisterStaysIdempotentWithAutoDrain)
{
    MineSweeper ms(small_options());
    const std::size_t baseline_threads = ms.mutator_thread_count();
    std::thread t([&] {
        ms.register_mutator_thread();
        void* p = ms.alloc(64);
        ms.free(p);
        ms.unregister_mutator_thread();
        // The TSD destructor must now be disarmed — a second
        // unregister at exit would fail the registry's checks.
    });
    t.join();
    EXPECT_EQ(ms.mutator_thread_count(), baseline_threads);
}

// ------------------------------------------------------ crash reporting

using LifecycleDeathTest = ::testing::Test;

TEST(LifecycleDeathTest, CrashReportClassifiesSyntheticUaf)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            core::lifecycle::install_crash_handler();
            Options o;
            o.unmapping = true;
            MineSweeper ms(o);
            // A large allocation is unmapped by free(): the dangling
            // read faults instead of seeing zeroes, which is the crash
            // the reporter exists to explain.
            char* p = static_cast<char*>(ms.alloc(std::size_t{4} << 20));
            p[0] = 1;
            ms.free(p);
            (void)*static_cast<volatile char*>(p);  // use-after-free
        },
        "likely use-after-free, quarantined by free\\(\\) at epoch");
}

// ------------------------------------------- lock-rank atfork window

TEST(Lifecycle, ForkWindowCoalescesEqualRanks)
{
    util::lock_rank_set_enabled(true);
    SpinLock a(LockRank::kBin);
    SpinLock b(LockRank::kBin);
    SpinLock c(LockRank::kExtent);

    util::lock_rank_fork_begin();
    a.lock();
    b.lock();  // same rank: legal (and coalesced) inside the window
    c.lock();
    EXPECT_EQ(util::lock_rank_held_count(), 2);  // kBin entry coalesced
    c.unlock();
    b.unlock();
    a.unlock();
    util::lock_rank_fork_end();
    EXPECT_EQ(util::lock_rank_held_count(), 0);
    util::lock_rank_set_enabled(false);
}

TEST(LifecycleDeathTest, ForkWindowStillPanicsOnInversion)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            util::lock_rank_set_enabled(true);
            SpinLock extent(LockRank::kExtent);
            SpinLock bin(LockRank::kBin);
            util::lock_rank_fork_begin();
            extent.lock();
            bin.lock();  // decreasing rank: misordered even in atfork
        },
        "lock rank inversion");
}

TEST(Lifecycle, AtforkCycleIsRankClean)
{
    // Acceptance: the full atfork lock cycle under an active rank
    // validator — any inversion in prepare/parent/child panics.
    util::lock_rank_set_enabled(true);
    MineSweeper ms(small_options());
    ASSERT_EQ(core::lifecycle::registered_runtime(), &ms);
    void* p = ms.alloc(64);
    fork_and_check([&] {
        void* q = ms.alloc(64);
        if (q == nullptr)
            _exit(2);
        ms.free(q);
    });
    ms.free(p);
    EXPECT_EQ(util::lock_rank_held_count(), 0);
    util::lock_rank_set_enabled(false);
}

TEST(Lifecycle, ForkChildReseedsPolicyRng)
{
    // The hardened allocation policy draws placement randomness from
    // thread_rng(). fork() duplicates that thread-local state; a child
    // replaying the parent's stream would have a heap layout
    // predictable from the parent, so the atfork child handler bumps
    // the reseed generation and the child's next draw diverges.
    MineSweeper ms(small_options());  // installs the atfork handlers
    (void)thread_rng().next_u64();    // instantiate this thread's engine
    const std::uint64_t gen_before = rng_generation();

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
        if (rng_generation() != gen_before + 1)
            _exit(2);  // atfork handler did not bump the generation
        std::uint64_t draws[4];
        for (auto& d : draws)
            d = thread_rng().next_u64();
        const ssize_t n = write(fds[1], draws, sizeof(draws));
        _exit(n == static_cast<ssize_t>(sizeof(draws)) ? 0 : 3);
    }
    std::uint64_t child_draws[4] = {};
    ASSERT_EQ(read(fds[0], child_draws, sizeof(child_draws)),
              static_cast<ssize_t>(sizeof(child_draws)));
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child status " << status;
    close(fds[0]);
    close(fds[1]);

    // The parent's engine was not invalidated: these are exactly the
    // values the child would have produced from the duplicated state.
    std::uint64_t parent_draws[4];
    for (auto& d : parent_draws)
        d = thread_rng().next_u64();
    EXPECT_NE(std::memcmp(parent_draws, child_draws,
                          sizeof(parent_draws)),
              0);
    EXPECT_EQ(rng_generation(), gen_before);
}

}  // namespace
}  // namespace msw
