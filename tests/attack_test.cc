// Security integration tests: the paper's threat model exercised against
// every system through the shared attack library. Parameterised over
// (system, victim size class) so small-slab, page-boundary and large
// (unmapped) victims are all covered.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "workload/attack.h"
#include "workload/system.h"

namespace msw::workload {
namespace {

struct Case {
    SystemKind kind;
    std::size_t victim_size;
    bool protected_expected;
};

std::string
case_name(const ::testing::TestParamInfo<Case>& info)
{
    std::string name = system_kind_name(info.param.kind);
    for (char& c : name) {
        if (c == '-')
            c = '_';
    }
    return name + "_size" + std::to_string(info.param.victim_size);
}

class HeapSprayTest : public ::testing::TestWithParam<Case>
{
};

void* g_dangling_slot;

TEST_P(HeapSprayTest, AliasOnlyWhenUnprotected)
{
    const Case c = GetParam();
    core::Options o;
    o.min_sweep_bytes = 16 * 1024;
    System sys = make_system(c.kind, o);
    sys.add_root(&g_dangling_slot, sizeof(g_dangling_slot));

    // Large victims are page-unmapped by quarantining systems: the
    // dangling read in the attack would fault, so probe those in a child.
    const bool large = c.victim_size > alloc::kMaxSmallSize;
    if (large && c.protected_expected) {
        const pid_t pid = fork();
        if (pid == 0) {
            const AttackResult r = heap_spray_attack(
                sys, &g_dangling_slot, c.victim_size, 2000);
            _exit(r.aliased ? 1 : 0);
        }
        int status = 0;
        waitpid(pid, &status, 0);
        if (WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV) {
            // Unmapped quarantine page: the use-after-free terminated
            // cleanly instead of reading attacker data. Prevention holds.
            SUCCEED();
            return;
        }
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "spray aliased the victim";
        return;
    }

    const AttackResult r =
        heap_spray_attack(sys, &g_dangling_slot, c.victim_size, 2000);
    if (c.protected_expected) {
        EXPECT_FALSE(r.aliased)
            << "use-after-reallocate under a protected system";
        EXPECT_NE(r.view, AttackResult::View::kAttackerData);
    } else {
        // The unprotected baseline recycles promptly: the attack works.
        EXPECT_TRUE(r.aliased);
        EXPECT_EQ(r.view, AttackResult::View::kAttackerData);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, HeapSprayTest,
    ::testing::Values(
        Case{SystemKind::kBaseline, 64, false},
        Case{SystemKind::kBaseline, 640, false},
        Case{SystemKind::kMineSweeper, 64, true},
        Case{SystemKind::kMineSweeper, 640, true},
        Case{SystemKind::kMineSweeper, 5000, true},
        Case{SystemKind::kMineSweeper, 1 << 20, true},
        Case{SystemKind::kMineSweeperMostly, 64, true},
        Case{SystemKind::kMineSweeperMostly, 1 << 20, true},
        Case{SystemKind::kMarkUs, 64, true},
        Case{SystemKind::kMarkUs, 5000, true},
        Case{SystemKind::kMarkUs, 1 << 20, true},
        Case{SystemKind::kFFMalloc, 64, true},
        Case{SystemKind::kFFMalloc, 640, true},
        Case{SystemKind::kFFMalloc, 1 << 20, true}),
    case_name);

class DoubleFreeTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(DoubleFreeTest, DoubleFreeCannotForgeAliases)
{
    const Case c = GetParam();
    System sys = make_system(c.kind);
    const bool aliased = double_free_attack(sys, 50);
    if (c.protected_expected)
        EXPECT_FALSE(aliased) << "double free forged an aliased owner";
    else
        EXPECT_TRUE(aliased) << "baseline should be exploitable "
                                "(validates the attack itself)";
}

// FFMalloc is excluded: its per-page counters abort on a double free
// (detection by clean termination rather than absorption).
INSTANTIATE_TEST_SUITE_P(
    Systems, DoubleFreeTest,
    ::testing::Values(Case{SystemKind::kBaseline, 128, false},
                      Case{SystemKind::kMineSweeper, 128, true},
                      Case{SystemKind::kMineSweeperMostly, 128, true},
                      Case{SystemKind::kMarkUs, 128, true}),
    case_name);

TEST(AttackViews, MineSweeperZeroFillsDanglingView)
{
    System sys = make_system(SystemKind::kMineSweeper);
    sys.add_root(&g_dangling_slot, sizeof(g_dangling_slot));
    const AttackResult r =
        heap_spray_attack(sys, &g_dangling_slot, 256, 500);
    EXPECT_FALSE(r.aliased);
    EXPECT_EQ(r.view, AttackResult::View::kZeroes)
        << "zero-filling must leave no stale data behind";
}

TEST(AttackViews, MarkUsKeepsOriginalData)
{
    // MarkUs does not zero: the benign use-after-free reads the original
    // (stale) data — still never attacker data.
    System sys = make_system(SystemKind::kMarkUs);
    sys.add_root(&g_dangling_slot, sizeof(g_dangling_slot));
    const AttackResult r =
        heap_spray_attack(sys, &g_dangling_slot, 256, 500);
    EXPECT_FALSE(r.aliased);
    EXPECT_EQ(r.view, AttackResult::View::kOriginal);
}

}  // namespace
}  // namespace msw::workload
