// Unit tests for the VM layer: reservation lifecycle, commit/decommit
// semantics, protection changes, and RSS accounting behaviour.
#include <gtest/gtest.h>

#include <csetjmp>
#include <csignal>
#include <cstring>

#include "util/bits.h"
#include "vm/vm.h"

namespace msw::vm {
namespace {

TEST(Reservation, ReserveRoundsToPages)
{
    Reservation r = Reservation::reserve(1);
    EXPECT_EQ(r.size(), kPageSize);
    EXPECT_NE(r.base(), 0u);
    EXPECT_TRUE(is_aligned(r.base(), kPageSize));
}

TEST(Reservation, ContainsBounds)
{
    Reservation r = Reservation::reserve(4 * kPageSize);
    EXPECT_TRUE(r.contains(r.base()));
    EXPECT_TRUE(r.contains(r.base() + r.size() - 1));
    EXPECT_FALSE(r.contains(r.base() + r.size()));
    EXPECT_FALSE(r.contains(r.base() - 1));
}

TEST(Reservation, CommitMakesWritable)
{
    Reservation r = Reservation::reserve(8 * kPageSize);
    ASSERT_EQ(r.commit(r.base(), 2 * kPageSize), VmStatus::kOk);
    auto* p = reinterpret_cast<char*>(r.base());
    std::memset(p, 0xab, 2 * kPageSize);
    EXPECT_EQ(p[0], static_cast<char>(0xab));
    EXPECT_EQ(p[2 * kPageSize - 1], static_cast<char>(0xab));
}

TEST(Reservation, CommittedPagesStartZeroed)
{
    Reservation r = Reservation::reserve(kPageSize);
    ASSERT_EQ(r.commit(r.base(), kPageSize), VmStatus::kOk);
    auto* p = reinterpret_cast<unsigned char*>(r.base());
    for (std::size_t i = 0; i < kPageSize; i += 64)
        ASSERT_EQ(p[i], 0u);
}

TEST(Reservation, DecommitDiscardsContents)
{
    Reservation r = Reservation::reserve(kPageSize);
    ASSERT_EQ(r.commit(r.base(), kPageSize), VmStatus::kOk);
    auto* p = reinterpret_cast<unsigned char*>(r.base());
    p[100] = 42;
    ASSERT_EQ(r.decommit(r.base(), kPageSize), VmStatus::kOk);
    ASSERT_EQ(r.commit(r.base(), kPageSize), VmStatus::kOk);
    EXPECT_EQ(p[100], 0u) << "decommit must drop physical contents";
}

TEST(Reservation, PurgeKeepsAccessibleButDropsContents)
{
    Reservation r = Reservation::reserve(kPageSize);
    ASSERT_EQ(r.commit(r.base(), kPageSize), VmStatus::kOk);
    auto* p = reinterpret_cast<unsigned char*>(r.base());
    p[7] = 9;
    ASSERT_EQ(r.purge_keep_accessible(r.base(), kPageSize), VmStatus::kOk);
    // No commit needed: page must still be accessible, now zero.
    EXPECT_EQ(p[7], 0u);
}

TEST(Reservation, MoveTransfersOwnership)
{
    Reservation a = Reservation::reserve(kPageSize);
    const std::uintptr_t base = a.base();
    Reservation b = std::move(a);
    EXPECT_EQ(b.base(), base);
    EXPECT_EQ(a.base(), 0u);
    Reservation c;
    c = std::move(b);
    EXPECT_EQ(c.base(), base);
    EXPECT_EQ(b.base(), 0u);
}

TEST(Reservation, ReleaseIsIdempotent)
{
    Reservation r = Reservation::reserve(kPageSize);
    r.release();
    EXPECT_EQ(r.base(), 0u);
    r.release();  // Must not crash.
}

TEST(Reservation, MethodsOnEmptyReservationAreNoOps)
{
    // A default-constructed (or moved-from / released) reservation must
    // accept every method as a well-defined no-op rather than passing a
    // null base to mmap/mprotect.
    Reservation r;
    EXPECT_EQ(r.base(), 0u);
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.commit(0, kPageSize), VmStatus::kOk);
    EXPECT_EQ(r.decommit(0, kPageSize), VmStatus::kOk);
    EXPECT_EQ(r.purge_keep_accessible(0, kPageSize), VmStatus::kOk);
    EXPECT_EQ(r.protect_none(0, kPageSize), VmStatus::kOk);
    EXPECT_EQ(r.protect_rw(0, kPageSize), VmStatus::kOk);
    r.release();
    r.release();
}

TEST(Reservation, MovedFromReservationIsSafeToUse)
{
    Reservation a = Reservation::reserve(4 * kPageSize);
    Reservation b = std::move(a);
    // a is now empty: operations must no-op, and releasing both (double
    // release of the underlying mapping from a's point of view) is safe.
    EXPECT_EQ(a.commit(b.base(), kPageSize), VmStatus::kOk);
    a.release();
    ASSERT_EQ(b.commit(b.base(), kPageSize), VmStatus::kOk);
    *reinterpret_cast<char*>(b.base()) = 1;
    b.release();
    b.release();
}

TEST(Reservation, ZeroLengthOperationsAreNoOps)
{
    Reservation r = Reservation::reserve(kPageSize);
    EXPECT_EQ(r.commit(r.base(), 0), VmStatus::kOk);
    EXPECT_EQ(r.decommit(r.base(), 0), VmStatus::kOk);
    EXPECT_EQ(r.purge_keep_accessible(r.base(), 0), VmStatus::kOk);
}

TEST(Reservation, CommitMustSucceedsOnHealthyPath)
{
    Reservation r = Reservation::reserve(2 * kPageSize);
    r.commit_must(r.base(), 2 * kPageSize);
    std::memset(reinterpret_cast<void*>(r.base()), 0x5a, 2 * kPageSize);
    EXPECT_EQ(*reinterpret_cast<unsigned char*>(r.base()), 0x5au);
}

// Protection faults are checked with a fork: cleaner than signal-handler
// longjmp inside the gtest process.
bool
access_faults(std::uintptr_t addr)
{
    const pid_t pid = fork();
    if (pid == 0) {
        *reinterpret_cast<volatile char*>(addr) = 1;
        _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV;
}

TEST(Reservation, ReservedPagesAreInaccessible)
{
    Reservation r = Reservation::reserve(kPageSize);
    EXPECT_TRUE(access_faults(r.base()));
}

TEST(Reservation, ProtectNoneRevokesAccess)
{
    Reservation r = Reservation::reserve(kPageSize);
    ASSERT_EQ(r.commit(r.base(), kPageSize), VmStatus::kOk);
    *reinterpret_cast<char*>(r.base()) = 1;
    ASSERT_EQ(r.protect_none(r.base(), kPageSize), VmStatus::kOk);
    EXPECT_TRUE(access_faults(r.base()));
    ASSERT_EQ(r.protect_rw(r.base(), kPageSize), VmStatus::kOk);
    EXPECT_FALSE(access_faults(r.base()));
    // protect_rw (unlike decommit+commit) preserves contents.
    EXPECT_EQ(*reinterpret_cast<char*>(r.base()), 1);
}

TEST(Rss, CurrentRssIsPlausible)
{
    const std::size_t rss = current_rss_bytes();
    EXPECT_GT(rss, 100 * 1024u);           // > 100 KiB
    EXPECT_LT(rss, 8ull * 1024 * 1024 * 1024);  // < 8 GiB
}

TEST(Rss, CommittingAndTouchingRaisesRss)
{
    const std::size_t kBytes = 32 * 1024 * 1024;
    const std::size_t before = current_rss_bytes();
    Reservation r = Reservation::reserve(kBytes);
    r.commit_must(r.base(), kBytes);
    std::memset(reinterpret_cast<void*>(r.base()), 1, kBytes);
    const std::size_t after = current_rss_bytes();
    EXPECT_GT(after, before + kBytes / 2);
}

TEST(Rss, PeakRssAtLeastCurrent)
{
    EXPECT_GE(peak_rss_bytes() + 1024 * 1024, current_rss_bytes());
}

TEST(PagesFor, Rounding)
{
    EXPECT_EQ(pages_for(0), 0u);
    EXPECT_EQ(pages_for(1), 1u);
    EXPECT_EQ(pages_for(kPageSize), 1u);
    EXPECT_EQ(pages_for(kPageSize + 1), 2u);
}

}  // namespace
}  // namespace msw::vm
