// Trace record/replay tests: format round-trips, recording determinism,
// cross-system replay equivalence, and hand-written micro-traces driving
// exact quarantine shapes.
#include <gtest/gtest.h>

#include <sstream>

#include "core/minesweeper.h"
#include "workload/trace.h"

namespace msw::workload {
namespace {

Profile
tiny_profile()
{
    Profile p;
    p.name = "trace-tiny";
    p.ticks = 2000;
    p.allocs_per_tick = 3;
    p.lifetime_mean_ticks = 50;
    p.long_lived_frac = 0.01;
    p.ptr_slots = 2;
    p.ptr_prob = 0.4;
    p.touch_bytes_per_tick = 256;
    return p;
}

TEST(Trace, RecordProducesBalancedOps)
{
    const Trace t = Trace::record(tiny_profile());
    ASSERT_FALSE(t.empty());
    std::size_t allocs = 0;
    std::size_t frees = 0;
    for (const TraceOp& op : t.ops()) {
        allocs += op.kind == TraceOpKind::kAlloc;
        frees += op.kind == TraceOpKind::kFree;
    }
    EXPECT_EQ(allocs, frees);
    EXPECT_EQ(allocs, t.num_ids());
}

TEST(Trace, RecordIsDeterministic)
{
    const Trace a = Trace::record(tiny_profile());
    const Trace b = Trace::record(tiny_profile());
    ASSERT_EQ(a.ops().size(), b.ops().size());
    for (std::size_t i = 0; i < a.ops().size(); ++i) {
        EXPECT_EQ(a.ops()[i].kind, b.ops()[i].kind) << i;
        EXPECT_EQ(a.ops()[i].id, b.ops()[i].id) << i;
        EXPECT_EQ(a.ops()[i].size, b.ops()[i].size) << i;
    }
}

TEST(Trace, SaveLoadRoundTrips)
{
    const Trace original = Trace::record(tiny_profile());
    std::stringstream buffer;
    original.save(buffer);
    const Trace loaded = Trace::load(buffer);
    ASSERT_EQ(loaded.ops().size(), original.ops().size());
    EXPECT_EQ(loaded.num_ids(), original.num_ids());
    for (std::size_t i = 0; i < original.ops().size(); ++i) {
        EXPECT_EQ(loaded.ops()[i].kind, original.ops()[i].kind) << i;
        EXPECT_EQ(loaded.ops()[i].id, original.ops()[i].id) << i;
        EXPECT_EQ(loaded.ops()[i].target, original.ops()[i].target) << i;
        EXPECT_EQ(loaded.ops()[i].slot, original.ops()[i].slot) << i;
        EXPECT_EQ(loaded.ops()[i].size, original.ops()[i].size) << i;
    }
}

TEST(Trace, ReplayBalancesAndChecksumsAcrossSystems)
{
    const Trace trace = Trace::record(tiny_profile());
    std::uint64_t checksums[3];
    int i = 0;
    for (const SystemKind kind :
         {SystemKind::kBaseline, SystemKind::kMineSweeper,
          SystemKind::kFFMalloc}) {
        System sys = make_system(kind);
        const WorkloadResult r = replay_trace(sys, trace);
        EXPECT_EQ(r.allocs, r.frees) << system_kind_name(kind);
        checksums[i++] = r.checksum;
    }
    EXPECT_EQ(checksums[0], checksums[1]);
    EXPECT_EQ(checksums[0], checksums[2]);
}

TEST(Trace, HandWrittenCycleTraceExercisesZeroing)
{
    // a <-> b cycle, both freed: MineSweeper must release both (zeroing
    // flattens the graph). Written directly in the trace format.
    std::stringstream text;
    text << "msw-trace v1\n"
         << "a 0 64\n"
         << "a 1 64\n"
         << "p 0 0 1\n"
         << "p 1 0 0\n"
         << "f 0\n"
         << "f 1\n";
    const Trace trace = Trace::load(text);

    core::Options o;
    o.min_sweep_bytes = 4096;
    System sys = make_system(SystemKind::kMineSweeper, o);
    auto* ms = dynamic_cast<core::MineSweeper*>(sys.allocator.get());
    ASSERT_NE(ms, nullptr);
    const WorkloadResult r = replay_trace(sys, trace);
    EXPECT_EQ(r.allocs, 2u);
    EXPECT_EQ(r.frees, 2u);
    ms->force_sweep();
    const auto stats = ms->stats();
    EXPECT_EQ(stats.quarantine_bytes, 0u)
        << "cycle must not survive a sweep";
}

TEST(Trace, LoadRejectsBadHeader)
{
    std::stringstream text;
    text << "not-a-trace\n";
    EXPECT_EXIT(Trace::load(text), ::testing::ExitedWithCode(1),
                "bad header");
}

TEST(Trace, LoadSkipsCommentsAndBlanks)
{
    std::stringstream text;
    text << "msw-trace v1\n"
         << "# a comment\n"
         << "\n"
         << "a 0 100\n"
         << "f 0\n";
    const Trace t = Trace::load(text);
    EXPECT_EQ(t.ops().size(), 2u);
}

}  // namespace
}  // namespace msw::workload
