// Allocation-policy layer tests: the default policy's table is all-null
// and behaviour-preserving (deterministic placement identical across
// instances), the hardened policy randomizes placement and reuse, and
// its canary/fill checks catch overflow and use-after-free writes —
// fatally by default, as counted events under MSW_POLICY_FATAL=0.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "alloc/jade_allocator.h"
#include "alloc/policy.h"
#include "core/minesweeper.h"
#include "util/bits.h"

namespace msw::alloc {
namespace {

TEST(PolicyTable, DefaultPolicyIsAllNull)
{
    const AllocPolicy& p = default_policy();
    EXPECT_STREQ(p.name, "default");
    EXPECT_EQ(p.choose_slot, nullptr);
    EXPECT_EQ(p.choose_cached, nullptr);
    EXPECT_EQ(p.fill_free, nullptr);
    EXPECT_EQ(p.check_free_fill, nullptr);
    EXPECT_EQ(p.arm_canary, nullptr);
    EXPECT_EQ(p.check_canary, nullptr);
    EXPECT_EQ(p.shuffle, nullptr);
}

TEST(PolicyTable, HardenedPolicyFillsEveryHook)
{
    const AllocPolicy& p = hardened_policy();
    EXPECT_STREQ(p.name, "hardened");
    EXPECT_NE(p.choose_slot, nullptr);
    EXPECT_NE(p.choose_cached, nullptr);
    EXPECT_NE(p.fill_free, nullptr);
    EXPECT_NE(p.check_free_fill, nullptr);
    EXPECT_NE(p.arm_canary, nullptr);
    EXPECT_NE(p.check_canary, nullptr);
    EXPECT_NE(p.shuffle, nullptr);
}

TEST(PolicyTable, LookupByName)
{
    EXPECT_EQ(policy_by_name("default"), &default_policy());
    EXPECT_EQ(policy_by_name("hardened"), &hardened_policy());
    EXPECT_EQ(policy_by_name(nullptr), &default_policy());
    EXPECT_EQ(policy_by_name("no-such-policy"), nullptr);
}

TEST(PolicyTable, EnvironmentResolution)
{
    ASSERT_EQ(setenv("MSW_POLICY", "hardened", 1), 0);
    EXPECT_EQ(&policy_from_env(), &hardened_policy());
    ASSERT_EQ(setenv("MSW_POLICY", "bogus", 1), 0);
    EXPECT_EQ(&policy_from_env(), &default_policy());
    ASSERT_EQ(unsetenv("MSW_POLICY"), 0);
    EXPECT_EQ(&policy_from_env(), &default_policy());
    // An explicit policy always wins over the environment.
    ASSERT_EQ(setenv("MSW_POLICY", "hardened", 1), 0);
    EXPECT_EQ(&resolve_policy(&default_policy()), &default_policy());
    EXPECT_EQ(&resolve_policy(nullptr), &hardened_policy());
    ASSERT_EQ(unsetenv("MSW_POLICY"), 0);
}

JadeAllocator::Options
substrate_options(const AllocPolicy& policy, bool tcache)
{
    JadeAllocator::Options o;
    o.heap_bytes = std::size_t{1} << 30;
    o.enable_tcache = tcache;
    o.policy = &policy;
    return o;
}

/** Allocation offsets relative to the first allocation. */
std::vector<std::ptrdiff_t>
alloc_deltas(JadeAllocator& jade, unsigned n, std::size_t size)
{
    std::vector<std::ptrdiff_t> deltas;
    char* first = nullptr;
    for (unsigned i = 0; i < n; ++i) {
        char* p = static_cast<char*>(jade.alloc(size));
        EXPECT_NE(p, nullptr);
        if (first == nullptr)
            first = p;
        deltas.push_back(p - first);
    }
    return deltas;
}

TEST(Placement, DefaultPlacementIsDeterministicAcrossInstances)
{
    // The behaviour-preservation contract: under the default policy two
    // fresh substrates serve an identical request sequence at identical
    // slab offsets (first-fit, ascending).
    JadeAllocator a(substrate_options(default_policy(), false));
    JadeAllocator b(substrate_options(default_policy(), false));
    const auto da = alloc_deltas(a, 64, 48);
    const auto db = alloc_deltas(b, 64, 48);
    EXPECT_EQ(da, db);
    for (std::size_t i = 1; i < da.size(); ++i)
        EXPECT_GT(da[i], da[i - 1]) << "first-fit must ascend";
}

TEST(Placement, HardenedPlacementIsRandomized)
{
    JadeAllocator jade(substrate_options(hardened_policy(), false));
    const auto deltas = alloc_deltas(jade, 64, 48);
    // 64 uniformly-placed slots coming out in ascending address order
    // has probability ~1/64!; any monotone run this long means the
    // random placement is not wired in.
    bool ascending = true;
    for (std::size_t i = 1; i < deltas.size(); ++i)
        if (deltas[i] < deltas[i - 1])
            ascending = false;
    EXPECT_FALSE(ascending);
}

TEST(Placement, HardenedThreadCacheReuseIsNotLifo)
{
    JadeAllocator jade(substrate_options(hardened_policy(), true));
    constexpr unsigned kBatch = 8;
    bool deviated = false;
    for (unsigned round = 0; round < 4 && !deviated; ++round) {
        void* ptrs[kBatch];
        for (auto& p : ptrs) {
            p = jade.alloc(48);
            ASSERT_NE(p, nullptr);
        }
        for (auto& p : ptrs)
            jade.free(p);  // cached in free order
        for (unsigned i = 0; i < kBatch; ++i) {
            void* got = jade.alloc(48);
            ASSERT_NE(got, nullptr);
            // LIFO would replay the frees in exact reverse order.
            if (got != ptrs[kBatch - 1 - i])
                deviated = true;
        }
    }
    // P(perfect LIFO under random picks, 4 rounds) = (1/8!)^4.
    EXPECT_TRUE(deviated);
}

}  // namespace
}  // namespace msw::alloc

namespace msw::core {
namespace {

Options
hardened_options()
{
    Options o;
    o.mode = Mode::kSynchronous;  // deterministic sweeps, no threads
    o.helper_threads = 0;
    o.min_sweep_bytes = 4096;
    o.jade.heap_bytes = std::size_t{1} << 30;
    o.jade.policy = &alloc::hardened_policy();
    return o;
}

TEST(HardenedRuntime, CountersAdvanceWithoutFalsePositives)
{
    MineSweeper ms(hardened_options());
    std::vector<void*> ptrs;
    for (int i = 0; i < 256; ++i) {
        void* p = ms.alloc(64);
        ASSERT_NE(p, nullptr);
        std::memset(p, 0x11, 64);  // dirty the payload like real code
        ptrs.push_back(p);
    }
    for (void* p : ptrs)
        ms.free(p);
    ms.force_sweep();
    const SweepStats s = ms.sweep_stats();
    EXPECT_EQ(s.canary_checks, 256u);
    EXPECT_EQ(s.canary_violations, 0u);
    EXPECT_GT(s.sweep_fill_checks, 0u);
    EXPECT_GE(s.release_shuffles, 1u);
}

TEST(HardenedRuntime, DefaultPolicyKeepsCountersAtZero)
{
    Options o = hardened_options();
    o.jade.policy = &alloc::default_policy();
    MineSweeper ms(o);
    void* p = ms.alloc(64);
    ASSERT_NE(p, nullptr);
    ms.free(p);
    ms.force_sweep();
    const SweepStats s = ms.sweep_stats();
    EXPECT_EQ(s.canary_checks, 0u);
    EXPECT_EQ(s.canary_violations, 0u);
    EXPECT_EQ(s.sweep_fill_checks, 0u);
    EXPECT_EQ(s.release_shuffles, 0u);
}

using HardenedDeathTest = ::testing::Test;

TEST(HardenedDeathTest, OverflowCanaryTripsAtFree)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            MineSweeper ms(hardened_options());
            char* p = static_cast<char*>(ms.alloc(40));
            // usable_size() excludes the reserved slack byte; writing it
            // is a one-byte heap overflow onto the canary.
            p[ms.usable_size(p)] = 0x77;
            ms.free(p);
        },
        "allocation policy violation");
}

TEST(HardenedDeathTest, QuarantineTamperTripsAtSweep)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            MineSweeper ms(hardened_options());
            char* p = static_cast<char*>(ms.alloc(64));
            ms.free(p);
            // Use-after-free write into the zero-filled quarantined
            // block; the release-time fill audit must catch it.
            p[8] = 1;
            ms.force_sweep();
        },
        "allocation policy violation");
}

TEST(HardenedRuntime, NonFatalModeCountsViolations)
{
    ASSERT_EQ(setenv("MSW_POLICY_FATAL", "0", 1), 0);
    MineSweeper ms(hardened_options());
    char* p = static_cast<char*>(ms.alloc(40));
    ASSERT_NE(p, nullptr);
    p[ms.usable_size(p)] = 0x77;
    ms.free(p);
    EXPECT_EQ(ms.sweep_stats().canary_violations, 1u);
    EXPECT_EQ(unsetenv("MSW_POLICY_FATAL"), 0);
}

}  // namespace
}  // namespace msw::core
