// Baseline tests: MarkUs (transitive marking) and FFMalloc (one-time
// allocation) must both prevent use-after-reallocate, each by its own
// mechanism, and exhibit their characteristic memory behaviours.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "baselines/ffmalloc.h"
#include "baselines/markus.h"
#include "util/bits.h"
#include "util/rng.h"

namespace msw::baseline {
namespace {

struct Roots {
    void* slot[64] = {};
};

// ------------------------------------------------------------- MarkUs

MarkUs::Options
markus_options()
{
    MarkUs::Options o;
    o.min_mark_bytes = 4096;
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

class MarkUsTest : public ::testing::Test
{
  protected:
    MarkUsTest() : mu(markus_options()) { mu.add_root(&roots, sizeof(roots)); }
    MarkUs mu;
    Roots roots;
};

TEST_F(MarkUsTest, BasicAllocFree)
{
    void* p = mu.alloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 1, 100);
    EXPECT_GE(mu.usable_size(p), 100u);
    mu.free(p);
    EXPECT_TRUE(mu.in_quarantine(p));
}

TEST_F(MarkUsTest, UnreachableAllocationIsCollected)
{
    void* p = mu.alloc(64);
    mu.free(p);
    mu.force_mark();
    EXPECT_FALSE(mu.in_quarantine(p));
}

TEST_F(MarkUsTest, RootReachableAllocationStaysQuarantined)
{
    void* p = mu.alloc(64);
    roots.slot[0] = p;
    mu.free(p);
    mu.force_mark();
    EXPECT_TRUE(mu.in_quarantine(p));
    roots.slot[0] = nullptr;
    mu.force_mark();
    EXPECT_FALSE(mu.in_quarantine(p));
}

TEST_F(MarkUsTest, TransitiveReachabilityPins)
{
    // root -> a -> b, where only a is in the root set. Freeing b must
    // keep it quarantined because it is reachable *through* a.
    auto** a = static_cast<void**>(mu.alloc(64));
    void* b = mu.alloc(64);
    a[0] = b;
    roots.slot[0] = a;
    mu.free(b);
    mu.force_mark();
    EXPECT_TRUE(mu.in_quarantine(b))
        << "b is reachable transitively via live object a";
    a[0] = nullptr;
    mu.force_mark();
    EXPECT_FALSE(mu.in_quarantine(b));
    roots.slot[0] = nullptr;
    mu.free(a);
}

TEST_F(MarkUsTest, UnreachableCycleIsCollected)
{
    // a <-> b cycle with no external reference: a tracing collector
    // handles this without zeroing (unlike a pure linear sweep).
    auto** a = static_cast<void**>(mu.alloc(64));
    auto** b = static_cast<void**>(mu.alloc(64));
    a[0] = b;
    b[0] = a;
    mu.free(a);
    mu.free(b);
    mu.force_mark();
    EXPECT_FALSE(mu.in_quarantine(a));
    EXPECT_FALSE(mu.in_quarantine(b));
}

TEST_F(MarkUsTest, ReachableCycleStays)
{
    auto** a = static_cast<void**>(mu.alloc(64));
    auto** b = static_cast<void**>(mu.alloc(64));
    a[0] = b;
    b[0] = a;
    roots.slot[0] = a;
    mu.free(a);
    mu.free(b);
    mu.force_mark();
    EXPECT_TRUE(mu.in_quarantine(a));
    EXPECT_TRUE(mu.in_quarantine(b)) << "b reachable via quarantined a";
    roots.slot[0] = nullptr;
    mu.force_mark();
    EXPECT_FALSE(mu.in_quarantine(a));
    EXPECT_FALSE(mu.in_quarantine(b));
}

TEST_F(MarkUsTest, UseAfterReallocatePrevented)
{
    void* victim = mu.alloc(128);
    roots.slot[0] = victim;
    mu.free(victim);
    for (int i = 0; i < 3000; ++i) {
        void* attacker = mu.alloc(128);
        ASSERT_NE(attacker, victim);
        mu.free(attacker);
    }
    roots.slot[0] = nullptr;
}

TEST_F(MarkUsTest, DoubleFreeAbsorbed)
{
    void* p = mu.alloc(64);
    mu.free(p);
    mu.free(p);
    mu.force_mark();
    void* q = mu.alloc(64);
    ASSERT_NE(q, nullptr);
    mu.free(q);
}

TEST_F(MarkUsTest, ChurnReleasesMemory)
{
    Rng rng(4);
    for (int i = 0; i < 20000; ++i) {
        void* p = mu.alloc(1 + rng.next_below(500));
        mu.free(p);
    }
    mu.flush();
    mu.force_mark();
    const auto s = mu.stats();
    EXPECT_GT(s.sweeps, 0u);
    EXPECT_LT(s.quarantine_bytes, 8u << 20);
}

// ------------------------------------------------------------ FFMalloc

class FFMallocTest : public ::testing::Test
{
  protected:
    FFMalloc::Options
    options()
    {
        FFMalloc::Options o;
        o.va_bytes = std::size_t{4} << 30;
        return o;
    }
    FFMallocTest() : ff(options()) {}
    FFMalloc ff;
};

TEST_F(FFMallocTest, BasicAllocFree)
{
    void* p = ff.alloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5c, 100);
    EXPECT_GE(ff.usable_size(p), 100u);
    ff.free(p);
}

TEST_F(FFMallocTest, VirtualAddressesAreNeverReused)
{
    std::set<void*> seen;
    for (int i = 0; i < 20000; ++i) {
        void* p = ff.alloc(64);
        ASSERT_TRUE(seen.insert(p).second)
            << "address reused at iteration " << i;
        ff.free(p);
    }
}

TEST_F(FFMallocTest, FrontierGrowsMonotonically)
{
    const std::size_t f0 = ff.frontier_bytes();
    for (int i = 0; i < 1000; ++i)
        ff.free(ff.alloc(256));
    const std::size_t f1 = ff.frontier_bytes();
    EXPECT_GT(f1, f0);
    for (int i = 0; i < 1000; ++i)
        ff.free(ff.alloc(256));
    EXPECT_GT(ff.frontier_bytes(), f1);
}

TEST_F(FFMallocTest, EmptyPagesAreDecommitted)
{
    // Pure churn: committed memory must stay bounded because fully-dead
    // pages are returned to the OS.
    for (int i = 0; i < 100000; ++i)
        ff.free(ff.alloc(512));
    EXPECT_LT(ff.stats().committed_bytes, 8u << 20)
        << "dead pages must be decommitted";
}

TEST_F(FFMallocTest, SurvivorPinsItsPage)
{
    // One long-lived object per batch: its page cannot be decommitted —
    // the fragmentation pathology of Fig 8.
    std::vector<void*> survivors;
    const std::size_t before = ff.stats().committed_bytes;
    for (int batch = 0; batch < 200; ++batch) {
        std::vector<void*> batch_ptrs;
        for (int i = 0; i < 64; ++i)
            batch_ptrs.push_back(ff.alloc(1024));
        survivors.push_back(batch_ptrs[7]);
        for (std::size_t i = 0; i < batch_ptrs.size(); ++i) {
            if (i != 7)
                ff.free(batch_ptrs[i]);
        }
    }
    // 200 survivors x 1 KiB live, but committed memory is pinned at page
    // granularity: far more than the live bytes.
    const std::size_t committed = ff.stats().committed_bytes - before;
    EXPECT_GT(committed, 200 * vm::kPageSize / 2)
        << "survivors must pin whole pages";
    for (void* p : survivors)
        ff.free(p);
}

TEST_F(FFMallocTest, LargeAllocationFreeDecommitsImmediately)
{
    const std::size_t before = ff.stats().committed_bytes;
    void* p = ff.alloc(8 << 20);
    std::memset(p, 1, 8 << 20);
    EXPECT_GE(ff.stats().committed_bytes, before + (8u << 20));
    ff.free(p);
    EXPECT_LE(ff.stats().committed_bytes, before + vm::kPageSize);
}

TEST_F(FFMallocTest, DanglingPointerReadsStaleOrFaults)
{
    // After free+spray, the dangling pointer never aliases new data.
    auto* victim = static_cast<std::uint64_t*>(ff.alloc(64));
    victim[0] = 0x1122334455667788ull;
    void* victim_ptr = victim;
    ff.free(victim);
    std::vector<void*> spray;
    for (int i = 0; i < 1000; ++i)
        spray.push_back(ff.alloc(64));
    for (void* p : spray)
        ASSERT_NE(p, victim_ptr) << "FFMalloc must never reuse addresses";
    for (void* p : spray)
        ff.free(p);
}

TEST_F(FFMallocTest, ContentsPreservedWhileLive)
{
    Rng rng(6);
    std::vector<std::pair<unsigned char*, unsigned char>> live;
    for (int i = 0; i < 20000; ++i) {
        if (live.empty() || rng.next_bool(0.5)) {
            const std::size_t size = 1 + rng.next_below(2000);
            auto canary = static_cast<unsigned char>(rng.next_below(256));
            auto* p = static_cast<unsigned char*>(ff.alloc(size));
            std::memset(p, canary, size);
            live.emplace_back(p, canary);
        } else {
            const std::size_t idx = rng.next_below(live.size());
            auto [p, canary] = live[idx];
            ASSERT_EQ(*p, canary);
            ff.free(p);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (auto [p, canary] : live)
        ff.free(p);
}

TEST_F(FFMallocTest, AlignedAllocation)
{
    for (std::size_t align : {32ul, 4096ul, 65536ul}) {
        void* p = ff.alloc_aligned(align, 1000);
        EXPECT_TRUE(is_aligned(to_addr(p), align)) << align;
        ff.free(p);
    }
}

TEST_F(FFMallocTest, UsableSizeForLarge)
{
    void* p = ff.alloc(100000);
    EXPECT_GE(ff.usable_size(p), 100000u);
    ff.free(p);
}

TEST_F(FFMallocTest, StatsCountCalls)
{
    const auto before = ff.stats();
    void* p = ff.alloc(64);
    ff.free(p);
    const auto after = ff.stats();
    EXPECT_EQ(after.alloc_calls, before.alloc_calls + 1);
    EXPECT_EQ(after.free_calls, before.free_calls + 1);
}

}  // namespace
}  // namespace msw::baseline
