// Size-class tests: monotonicity, rounding invariants, jemalloc-style
// spacing, and slab geometry.
#include <gtest/gtest.h>

#include "alloc/size_classes.h"
#include "vm/vm.h"

namespace msw::alloc {
namespace {

TEST(SizeClasses, FirstAndLastClasses)
{
    EXPECT_EQ(class_size(0), kGranule);
    EXPECT_EQ(class_size(num_size_classes() - 1), kMaxSmallSize);
}

TEST(SizeClasses, SizesStrictlyIncreaseAndAreGranuleMultiples)
{
    for (unsigned c = 0; c < num_size_classes(); ++c) {
        EXPECT_EQ(class_size(c) % kGranule, 0u) << "class " << c;
        if (c > 0)
            EXPECT_GT(class_size(c), class_size(c - 1)) << "class " << c;
    }
}

TEST(SizeClasses, LookupReturnsSmallestFittingClass)
{
    for (std::size_t size = 1; size <= kMaxSmallSize; ++size) {
        const unsigned cls = size_to_class(size);
        ASSERT_GE(class_size(cls), size) << "size " << size;
        if (cls > 0)
            ASSERT_LT(class_size(cls - 1), size) << "size " << size;
    }
}

TEST(SizeClasses, ExactSizesMapToThemselves)
{
    for (unsigned c = 0; c < num_size_classes(); ++c)
        EXPECT_EQ(size_to_class(class_size(c)), c);
}

TEST(SizeClasses, InternalFragmentationBounded)
{
    // jemalloc spacing: rounding waste is < 25 % for sizes above 128 B.
    for (std::size_t size = 129; size <= kMaxSmallSize; size += 7) {
        const std::size_t rounded = class_size(size_to_class(size));
        EXPECT_LE(rounded, size + size / 4 + kGranule)
            << "size " << size << " rounds to " << rounded;
    }
}

TEST(SizeClasses, PowerOfTwoSizesAreClasses)
{
    for (std::size_t s = 16; s <= 8192; s *= 2)
        EXPECT_EQ(class_size(size_to_class(s)), s) << s;
}

TEST(SlabGeometry, SlotsFitInSlab)
{
    for (unsigned c = 0; c < num_size_classes(); ++c) {
        const std::size_t slab_bytes = slab_pages(c) * vm::kPageSize;
        EXPECT_GE(slab_bytes / class_size(c), slab_slots(c));
        EXPECT_GE(slab_slots(c), 1u);
        EXPECT_LE(slab_slots(c), kMaxSlabSlots);
        EXPECT_GE(slab_pages(c), 1u);
        EXPECT_LE(slab_pages(c), 16u);
    }
}

TEST(SlabGeometry, SlabWasteIsBounded)
{
    for (unsigned c = 0; c < num_size_classes(); ++c) {
        const std::size_t slab_bytes = slab_pages(c) * vm::kPageSize;
        const std::size_t used = slab_slots(c) * class_size(c);
        const double waste =
            static_cast<double>(slab_bytes - used) / slab_bytes;
        EXPECT_LT(waste, 0.25) << "class " << c << " size " << class_size(c);
    }
}

TEST(SlabGeometry, SmallClassesHaveManySlots)
{
    // Classes up to 512 B should pack at least 8 objects per slab so bin
    // refills amortise.
    for (unsigned c = 0; c < num_size_classes(); ++c) {
        if (class_size(c) <= 512)
            EXPECT_GE(slab_slots(c), 8u) << "class size " << class_size(c);
    }
}

}  // namespace
}  // namespace msw::alloc
