// Marker and worker-pool tests: pointer discovery in scanned ranges,
// chunking, parallel dispatch, and the page-access map.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "sweep/page_access_map.h"
#include "sweep/sweeper.h"
#include "vm/vm.h"

namespace msw::sweep {
namespace {

class MarkerTest : public ::testing::Test
{
  protected:
    MarkerTest()
        : heap(vm::Reservation::reserve(16 << 20)),
          shadow(heap.base(), heap.size()),
          marker(&shadow, heap.base(), heap.end())
    {
        heap.commit_must(heap.base(), heap.size());
    }

    vm::Reservation heap;
    ShadowMap shadow;
    Marker marker;

    // A scannable buffer outside the heap.
    alignas(8) std::uint64_t buffer[1024] = {};
};

TEST_F(MarkerTest, FindsPointerIntoHeap)
{
    buffer[10] = heap.base() + 4096;
    const MarkStats stats =
        marker.mark_one(Range{to_addr(buffer), sizeof(buffer)});
    EXPECT_EQ(stats.pointers_found, 1u);
    EXPECT_TRUE(shadow.test(heap.base() + 4096));
}

TEST_F(MarkerTest, IgnoresNonHeapValues)
{
    buffer[0] = 0x12345678;
    buffer[1] = heap.base() - 8;   // just below
    buffer[2] = heap.end();        // one past
    buffer[3] = 0;
    const MarkStats stats =
        marker.mark_one(Range{to_addr(buffer), sizeof(buffer)});
    EXPECT_EQ(stats.pointers_found, 0u);
}

TEST_F(MarkerTest, FirstAndLastHeapByteCount)
{
    buffer[0] = heap.base();
    buffer[1] = heap.end() - 1;
    const MarkStats stats =
        marker.mark_one(Range{to_addr(buffer), sizeof(buffer)});
    EXPECT_EQ(stats.pointers_found, 2u);
    EXPECT_TRUE(shadow.test(heap.base()));
    EXPECT_TRUE(shadow.test(heap.end() - 1));
}

TEST_F(MarkerTest, InteriorPointersMarkInteriorGranules)
{
    buffer[0] = heap.base() + 1000;  // interior of some allocation
    marker.mark_one(Range{to_addr(buffer), sizeof(buffer)});
    EXPECT_TRUE(shadow.test_range(heap.base() + 512, 1024));
    EXPECT_FALSE(shadow.test_range(heap.base() + 1024, 1024));
}

TEST_F(MarkerTest, MisalignedWordsAreNotSeen)
{
    // A pointer at an odd byte offset is invisible to the aligned scan —
    // the paper's "correctly aligned" design point (§1.2).
    char raw[64] = {};
    const std::uint64_t value = heap.base() + 64;
    std::memcpy(raw + 1, &value, sizeof(value));
    marker.mark_one(Range{to_addr(raw), sizeof(raw)});
    EXPECT_FALSE(shadow.test(heap.base() + 64));
}

TEST_F(MarkerTest, ScansHeapItselfForHeapPointers)
{
    // Pointer stored *inside* the heap (live object referencing another).
    auto* in_heap = reinterpret_cast<std::uint64_t*>(heap.base() + 8192);
    in_heap[0] = heap.base() + 123456;
    marker.mark_one(Range{heap.base() + 8192, 64});
    EXPECT_TRUE(shadow.test(heap.base() + 123456));
}

TEST_F(MarkerTest, XoredPointerIsHidden)
{
    buffer[0] = (heap.base() + 4096) ^ 0xdeadbeefcafebabeull;
    const MarkStats stats =
        marker.mark_one(Range{to_addr(buffer), sizeof(buffer)});
    // Value lands far outside the heap: legitimately not found.
    EXPECT_FALSE(shadow.test(heap.base() + 4096));
    (void)stats;
}

TEST_F(MarkerTest, ParallelMarkingFindsEverything)
{
    // Fill 8 MiB of heap with pointers to pseudo-random heap locations,
    // then mark in parallel and verify all targets are set.
    auto* words = reinterpret_cast<std::uint64_t*>(heap.base());
    const std::size_t n = (8 << 20) / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < n; ++i)
        words[i] = heap.base() + (i * 2654435761u) % heap.size();

    SweepWorkers workers(3);
    const MarkStats stats = marker.mark_ranges(
        {Range{heap.base(), 8 << 20}}, &workers);
    EXPECT_EQ(stats.pointers_found, n);
    EXPECT_EQ(stats.bytes_scanned, std::uint64_t{8} << 20);
    for (std::size_t i = 0; i < n; i += 97)
        ASSERT_TRUE(
            shadow.test(heap.base() + (i * 2654435761u) % heap.size()));
}

TEST(ChunkRanges, SplitsAndPreservesCoverage)
{
    std::vector<Range> ranges = {Range{0, 1000}, Range{5000, 3000}};
    const auto chunks = chunk_ranges(ranges, 1024);
    std::size_t total = 0;
    for (const Range& c : chunks) {
        EXPECT_LE(c.len, 1024u);
        total += c.len;
    }
    EXPECT_EQ(total, 4000u);
    EXPECT_EQ(chunks.size(), 4u);  // 1000 | 1024+1024+952
}

TEST(ChunkRanges, EmptyInput)
{
    EXPECT_TRUE(chunk_ranges({}, 1024).empty());
}

TEST(SweepWorkersTest, RunsJobOnAllWorkers)
{
    SweepWorkers workers(3);
    EXPECT_EQ(workers.count(), 4u);
    std::atomic<unsigned> mask{0};
    workers.run([&](unsigned index) {
        mask.fetch_or(1u << index, std::memory_order_relaxed);
    });
    EXPECT_EQ(mask.load(), 0b1111u);
}

TEST(SweepWorkersTest, SequentialRunsAreIsolated)
{
    SweepWorkers workers(2);
    for (int round = 0; round < 100; ++round) {
        std::atomic<int> count{0};
        workers.run([&](unsigned) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 3);
    }
}

TEST(SweepWorkersTest, ZeroHelpersRunsCallerOnly)
{
    SweepWorkers workers(0);
    int runs = 0;
    workers.run([&](unsigned index) {
        EXPECT_EQ(index, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(SweepWorkersTest, HelperCpuTimeAccumulates)
{
    SweepWorkers workers(2);
    workers.run([&](unsigned) {
        volatile std::uint64_t x = 0;
        for (int i = 0; i < 2000000; ++i)
            x += i;
    });
    EXPECT_GT(workers.helper_cpu_ns(), 0u);
}

TEST(PageAccessMapTest, SetClearAndRuns)
{
    const std::uintptr_t base = std::uintptr_t{1} << 40;
    PageAccessMap map(base, 1 << 20);  // 256 pages
    EXPECT_EQ(map.committed_bytes(), 0u);
    map.set_range(base, 3 * vm::kPageSize);
    map.set_range(base + 10 * vm::kPageSize, 2 * vm::kPageSize);
    EXPECT_EQ(map.committed_bytes(), 5 * vm::kPageSize);
    EXPECT_TRUE(map.test(base));
    EXPECT_TRUE(map.test(base + 2 * vm::kPageSize + 5));
    EXPECT_FALSE(map.test(base + 3 * vm::kPageSize));

    const auto runs = map.committed_runs();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].base, base);
    EXPECT_EQ(runs[0].len, 3 * vm::kPageSize);
    EXPECT_EQ(runs[1].base, base + 10 * vm::kPageSize);
    EXPECT_EQ(runs[1].len, 2 * vm::kPageSize);

    map.clear_range(base + vm::kPageSize, vm::kPageSize);
    EXPECT_EQ(map.committed_bytes(), 4 * vm::kPageSize);
    EXPECT_EQ(map.committed_runs().size(), 3u);
}

TEST(PageAccessMapTest, IdempotentUpdatesKeepCountExact)
{
    const std::uintptr_t base = std::uintptr_t{1} << 40;
    PageAccessMap map(base, 1 << 20);
    map.set_range(base, 4 * vm::kPageSize);
    map.set_range(base, 4 * vm::kPageSize);  // again
    EXPECT_EQ(map.committed_bytes(), 4 * vm::kPageSize);
    map.clear_range(base, 2 * vm::kPageSize);
    map.clear_range(base, 2 * vm::kPageSize);  // again
    EXPECT_EQ(map.committed_bytes(), 2 * vm::kPageSize);
}

}  // namespace
}  // namespace msw::sweep
