// Chaos soak: hammer the process-lifecycle machinery — fork while
// threads churn the allocator, fork+exec, threads exiting without
// unregistering, lifecycle failpoints armed — under a wall-clock
// budget, asserting every child exits clean and the parent's runtime
// keeps its invariants. The lock-rank validator is on for the whole
// soak, so a single ordering mistake across an atfork cycle aborts.
//
// Budget: MSW_CHAOS_SECONDS (default 2; CI keeps it short, local soaks
// can run minutes). Runs under the asan+ubsan and tsan matrices; the
// ctest registration sets TSAN_OPTIONS=die_after_fork=0 because the
// whole point is forking a multi-threaded process.
#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/lifecycle.h"
#include "core/minesweeper.h"
#include "util/failpoint.h"
#include "util/lock_rank.h"

namespace msw {
namespace {

using core::MineSweeper;
using core::Options;
using Clock = std::chrono::steady_clock;

double
budget_seconds()
{
    if (const char* env = std::getenv("MSW_CHAOS_SECONDS")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
    }
    return 2.0;
}

Options
chaos_options()
{
    Options o;
    o.min_sweep_bytes = 16 << 10;  // sweep constantly
    o.helper_threads = 2;
    // Exercise the fallback paths, and keep them cheap: every stall a
    // sweeper-less fork child can suffer (force_sweep wait, allocation
    // pause) is bounded by this deadline, so per-iteration cost stays
    // small against the wall-clock budget.
    o.watchdog_timeout_ms = 50;
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

/** Allocator churn with a mix of sizes crossing the small/large split. */
void
churn_once(MineSweeper& ms, unsigned& rng, std::vector<void*>& held)
{
    rng = rng * 1664525u + 1013904223u;
    const std::size_t size = (rng % 97 == 0)
                                 ? (std::size_t{1} << 20)
                                 : 16 + (rng % 2048);
    void* p = ms.alloc(size);
    if (p != nullptr) {
        std::memset(p, 0x5a, 64 < size ? 64 : size);
        held.push_back(p);
    }
    if (held.size() > 64 || (p == nullptr && !held.empty())) {
        ms.free(held.back());
        held.pop_back();
    }
}

struct ChurnCrew {
    explicit ChurnCrew(MineSweeper& ms, unsigned n) : ms_(ms)
    {
        for (unsigned i = 0; i < n; ++i) {
            threads_.emplace_back([this, i] {
                ms_.register_mutator_thread();
                unsigned rng = 0x9e3779b9u + i;
                std::vector<void*> held;
                while (!stop_.load(std::memory_order_relaxed))
                    churn_once(ms_, rng, held);
                for (void* p : held)
                    ms_.free(p);
                // Odd workers exit WITHOUT unregistering: the lifecycle
                // TSD destructor must drain them.
                if (i % 2 == 0)
                    ms_.unregister_mutator_thread();
            });
        }
    }

    ~ChurnCrew()
    {
        stop_.store(true, std::memory_order_relaxed);
        for (auto& t : threads_)
            t.join();
    }

    MineSweeper& ms_;
    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
};

/** fork(); child runs @p fn and _exits 0. Returns the child's status. */
template <typename Fn>
int
fork_status(Fn&& fn)
{
    const pid_t pid = fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        fn();
        _exit(0);
    }
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return -2;
    return status;
}

bool
clean_exit(int status)
{
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(ChaosSoak, ForkThreadChurnFailpointSoak)
{
    util::lock_rank_set_enabled(true);
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(budget_seconds());

    MineSweeper ms(chaos_options());
    ASSERT_EQ(core::lifecycle::registered_runtime(), &ms);

    // Lifecycle failpoints: stall the fully-locked prepare window, make
    // children lose their sweeper respawn, delay thread-exit drains.
    // Probabilistic so the soak also explores the un-injected paths.
    util::failpoint_arm(util::Failpoint::kForkPrepare,
                        util::FailpointPolicy::prob(0.5));
    util::failpoint_arm(util::Failpoint::kForkChild,
                        util::FailpointPolicy::prob(0.25));
    util::failpoint_arm(util::Failpoint::kThreadExit,
                        util::FailpointPolicy::prob(0.5));

    unsigned forks = 0;
    unsigned thread_generations = 0;
    {
        ChurnCrew crew(ms, 4);
        unsigned rng = 0xdecafbadu;
        while (Clock::now() < deadline) {
            rng = rng * 1664525u + 1013904223u;
            switch (rng % 4) {
            case 0: {  // fork; child keeps using the runtime
                const int status = fork_status([&] {
                    util::failpoint_disarm_all();
                    std::vector<void*> held;
                    unsigned crng = rng;
                    // A kForkChild injection leaves this child in
                    // degraded mode where every quarantine-pressure
                    // allocation rides a watchdog stall, so the
                    // iteration count bounds the whole run's tail.
                    for (int i = 0; i < 32; ++i)
                        churn_once(ms, crng, held);
                    for (void* p : held)
                        ms.free(p);
                    ms.force_sweep();
                });
                ASSERT_TRUE(clean_exit(status)) << "status " << status;
                ++forks;
                break;
            }
            case 1: {  // fork + exec: the classic daemon pattern
                const pid_t pid = fork();
                ASSERT_GE(pid, 0);
                if (pid == 0) {
                    // A post-fork allocation before exec, like a real
                    // spawner building its argv.
                    void* p = ms.alloc(128);
                    if (p == nullptr)
                        _exit(2);
                    ms.free(p);
                    execl("/bin/true", "true",
                          static_cast<char*>(nullptr));
                    _exit(3);  // exec failed
                }
                int status = 0;
                ASSERT_EQ(waitpid(pid, &status, 0), pid);
                ASSERT_TRUE(clean_exit(status)) << "status " << status;
                ++forks;
                break;
            }
            case 2: {  // thread generation: spawn, churn, exit undrained
                std::thread t([&ms, rng] {
                    ms.register_mutator_thread();
                    unsigned trng = rng;
                    std::vector<void*> held;
                    for (int i = 0; i < 100; ++i)
                        churn_once(ms, trng, held);
                    for (void* p : held)
                        ms.free(p);
                    // exits without unregistering (lifecycle drain)
                });
                t.join();
                ++thread_generations;
                break;
            }
            default:  // give the sweeper something to do
                ms.force_sweep();
                break;
            }
        }
    }

    util::failpoint_disarm_all();

    // Post-soak invariants: no stranded mutator registrations, no held
    // ranks, and the runtime still allocates, frees, sweeps and forks.
    EXPECT_EQ(ms.mutator_thread_count(), 0u);
    EXPECT_EQ(util::lock_rank_held_count(), 0);
    EXPECT_GT(forks, 0u);
    EXPECT_GT(thread_generations, 0u);
    // Every fork evaluates the prepare failpoint while it is armed;
    // whether the probabilistic policy *fired* is up to the RNG (a short
    // budget may see only misses), so assert on evaluations.
    EXPECT_GT(util::failpoint_evaluations(util::Failpoint::kForkPrepare),
              0u);

    void* p = ms.alloc(64);
    ASSERT_NE(p, nullptr);
    ms.free(p);
    ms.force_sweep();
    const int status = fork_status([&] {
        void* q = ms.alloc(64);
        if (q == nullptr)
            _exit(2);
        ms.free(q);
    });
    EXPECT_TRUE(clean_exit(status)) << "status " << status;
    util::lock_rank_set_enabled(false);
}

TEST(ChaosSoak, ForkStormWhileSweeping)
{
    // Tight fork loop against a permanently-busy sweeper: the prepare
    // handler quiesces a sweep per fork, the child resumes lazily.
    util::lock_rank_set_enabled(true);
    const auto deadline =
        Clock::now() +
        std::chrono::duration<double>(budget_seconds() / 2);

    MineSweeper ms(chaos_options());
    ChurnCrew crew(ms, 2);
    unsigned forks = 0;
    while (Clock::now() < deadline) {
        const int status = fork_status([&] {
            void* p = ms.alloc(512);
            if (p == nullptr)
                _exit(2);
            std::memset(p, 0x33, 512);
            ms.free(p);
        });
        ASSERT_TRUE(clean_exit(status)) << "status " << status;
        ++forks;
    }
    EXPECT_GT(forks, 0u);
    util::lock_rank_set_enabled(false);
}

}  // namespace
}  // namespace msw
