// Trace-ring tests: ordering, wraparound/overwrite behaviour, and the
// per-slot seqlock holding up under concurrent pushers and readers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "metrics/trace_ring.h"

namespace msw::metrics {
namespace {

TEST(TraceRing, EmptySnapshot)
{
    TraceRing ring;
    TraceRecord out[8];
    EXPECT_EQ(ring.snapshot(out, 8), 0u);
    EXPECT_EQ(ring.pushed(), 0u);
}

TEST(TraceRing, RecordsInOrder)
{
    TraceRing ring;
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.push(TraceEvent::kSweepBegin, i, i * 2);
    TraceRecord out[64];
    const std::size_t n = ring.snapshot(out, 64);
    ASSERT_EQ(n, 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(out[i].ticket, i);
        EXPECT_EQ(out[i].event, TraceEvent::kSweepBegin);
        EXPECT_EQ(out[i].a0, i);
        EXPECT_EQ(out[i].a1, i * 2);
        if (i > 0)
            EXPECT_GE(out[i].ts_ns, out[i - 1].ts_ns);
    }
}

TEST(TraceRing, CapLimitsToNewest)
{
    TraceRing ring;
    for (std::uint64_t i = 0; i < 100; ++i)
        ring.push(TraceEvent::kAllocPause, i, 0);
    TraceRecord out[10];
    const std::size_t n = ring.snapshot(out, 10);
    ASSERT_EQ(n, 10u);
    // The cap keeps the newest records, oldest-first.
    EXPECT_EQ(out[0].ticket, 90u);
    EXPECT_EQ(out[9].ticket, 99u);
}

TEST(TraceRing, WraparoundOverwritesOldest)
{
    TraceRing ring;
    const std::uint64_t total = TraceRing::kSlots * 3 + 17;
    for (std::uint64_t i = 0; i < total; ++i)
        ring.push(TraceEvent::kPhaseMark, i, 0);
    EXPECT_EQ(ring.pushed(), total);

    std::vector<TraceRecord> out(TraceRing::kSlots);
    const std::size_t n = ring.snapshot(out.data(), out.size());
    ASSERT_EQ(n, TraceRing::kSlots);
    // Only the newest kSlots survive; everything older was overwritten.
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i].ticket, total - TraceRing::kSlots + i);
        EXPECT_EQ(out[i].a0, out[i].ticket);
    }
}

TEST(TraceRing, ResetEmptiesTheRing)
{
    TraceRing ring;
    ring.push(TraceEvent::kSweepEnd, 1, 2);
    ring.reset();
    EXPECT_EQ(ring.pushed(), 0u);
    TraceRecord out[8];
    EXPECT_EQ(ring.snapshot(out, 8), 0u);
}

TEST(TraceRing, EventNamesCoverTheEnum)
{
    for (unsigned e = 0;
         e < static_cast<unsigned>(TraceEvent::kCount); ++e) {
        const char* name =
            trace_event_name(static_cast<TraceEvent>(e));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
        EXPECT_STRNE(name, "unknown");
    }
}

// Many pushers racing a snapshotting reader. Each thread pushes records
// whose a1 is a pure function of a0, so a snapshot that mixed fields
// from two different writers (a torn read) breaks the pairing. The
// seqlock must reject such slots rather than return them.
TEST(TraceRingConcurrent, SnapshotNeverTears)
{
    TraceRing ring;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 50000;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> bad{0};

    std::thread reader([&] {
        std::vector<TraceRecord> out(256);
        while (!stop.load(std::memory_order_acquire)) {
            const std::size_t n = ring.snapshot(out.data(), out.size());
            for (std::size_t i = 0; i < n; ++i) {
                const TraceRecord& r = out[i];
                if (r.a1 != (r.a0 ^ 0xdeadbeefull) ||
                    r.event != TraceEvent::kAllocPause)
                    bad.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });

    std::vector<std::thread> pushers;
    for (unsigned t = 0; t < kThreads; ++t) {
        pushers.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const std::uint64_t a0 = t * kPerThread + i;
                ring.push(TraceEvent::kAllocPause, a0,
                          a0 ^ 0xdeadbeefull);
            }
        });
    }
    for (auto& th : pushers)
        th.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(bad.load(), 0u) << "snapshot returned a torn record";
    EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
}

}  // namespace
}  // namespace msw::metrics
